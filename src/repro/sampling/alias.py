"""Alias-method weighted sampling (Lemma 2.6 / [HS19]).

Two samplers realise the paper's O(1)-per-query bound:

* :class:`AliasTable` — one fixed distribution (the seed's primitive).
* :class:`CSRAliasSampler` — one alias table **per CSR row**, stored as
  flat ``prob``/``alias`` planes aligned with the adjacency's slot
  layout.  This is the walk engine's hot-path sampler: a batch of
  walkers standing on arbitrary rows resolves every step with one
  uniform draw, a fan-out multiply into the row, two gathers, and one
  comparison — no bisection, no per-row Python.

The batched sampler builds through :func:`build_alias_tables`, a
*batched* Vose construction: all rows advance in lockstep (one
finalised table cell per active row per vectorised iteration), so the
Python-level loop count is the maximum row degree while the total work
stays linear in the slot count.  The per-row pairing order is
deterministic (smalls in ascending slot order against the current
large, demoted larges processed immediately), which makes the planes a
pure function of the per-row weight sequences — the property the
incremental maintenance in
:class:`repro.sampling.inc_csr.IncrementalWalkCSR` relies on for
bit-identical cached rows.  :class:`AliasTable` keeps its historical
single-distribution loop (see its constructor for why).

The construction is exact up to floating-point rounding; a final clamp
makes every probability valid.  Ledger charges follow the [HS19]
accounting the paper cites: ``(O(m), O(log m))`` per build, ``O(1)``
per query.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator

__all__ = ["AliasTable", "CSRAliasSampler", "build_alias_tables"]

#: Active-row count below which the lockstep build finishes each row
#: with the scalar loop instead.  Pure scheduling policy: both engines
#: execute the identical per-row operation sequence (same IEEE-754
#: ops, same order), so the planes are bit-identical wherever the
#: crossover lands — the cutoff only avoids paying numpy's per-call
#: overhead on near-empty iterations when a few high-degree rows
#: outlive the rest of the batch.
_SCALAR_ROWS = 64

#: Degree at or above which a row is built by the vectorised
#: prefix-sum sweep instead of the sequential Vose pairing.  Unlike
#: :data:`_SCALAR_ROWS` this threshold selects a *different* (equally
#: exact) construction whose float output differs in the last bits, so
#: it must be — and is — a pure function of the row alone (its degree):
#: a row is built by the same algorithm whether it arrives in a full-
#: view batch or an incremental rebuild of dirty rows, keeping the
#: cached-vs-scratch planes bit-identical.
_SWEEP_DEG = 128


def _vose_row_sweep(prob, alias, smalls, larges, scaled) -> None:
    """Vectorised alias construction for one high-degree row.

    Equivalent to the sequential sweep in exact arithmetic, O(deg)
    with a handful of numpy passes instead of one Python step per
    cell: with per-small deficits ``d_i = 1 − scaled(s_i)`` and
    per-large surpluses ``e_j = scaled(l_j) − 1``, the sequential
    pairing assigns small ``i`` to the large current at its
    consumption — the first ``j`` with ``E_j ≥ D_{i−1}`` (``D``/``E``
    the prefix sums) — and demotes large ``j`` with leftover
    ``ρ_j = 1 + E_j − D_{i*}`` at the first ``i*`` with
    ``D_{i*} > E_j``, aliased to ``l_{j+1}``.  Mass at ``l_j``
    telescopes to ``1 + e_j = scaled(l_j)`` exactly; float rounding
    enters only through the prefix sums (clamped globally).
    """
    s_sc = scaled[smalls]
    l_sc = scaled[larges]
    nl = larges.size
    D = np.cumsum(1.0 - s_sc)
    E = np.cumsum(l_sc - 1.0)
    prob[smalls] = s_sc
    d_prev = np.concatenate(([0.0], D[:-1]))
    j_idx = np.searchsorted(E, d_prev, side="left")
    np.minimum(j_idx, nl - 1, out=j_idx)  # rounding clamp (leftovers)
    alias[smalls] = larges[j_idx]
    # first strictly-greater cumulative deficit per large; == D.size
    # means never demoted (prob stays 1); the last large never demotes.
    i_star = np.searchsorted(D, E, side="right")
    dem = i_star < D.size
    dem[-1] = False
    if dem.any():
        k = np.flatnonzero(dem)
        prob[larges[k]] = 1.0 + (E[k] - D[i_star[k]])
        alias[larges[k]] = larges[k + 1]


def _rowwise_merge_ranks(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row rank of every cell of ``[a | b]`` under a stable sort.

    Both inputs are ``(g, ·)`` blocks of non-decreasing rows; the
    return aligns with their concatenation along axis 1.  Comparison
    only — no float arithmetic — so the ranks reproduce per-row
    ``searchsorted`` answers exactly (see the callers for which side
    of the tie each use needs).
    """
    merged = np.concatenate((a, b), axis=1)
    order = np.argsort(merged, axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order,
        np.broadcast_to(np.arange(merged.shape[1]), merged.shape),
        axis=1)
    return ranks


def _vose_rows_sweep_batch(prob, alias, smalls2d, larges2d,
                           scaled) -> None:
    """One 2-D pass over same-shape high-degree rows.

    ``smalls2d``/``larges2d`` are ``(g, ns)``/``(g, nl)`` global slot
    blocks for ``g`` rows sharing one ``(deg, ns)`` signature, so every
    per-row statement of :func:`_vose_row_sweep` lifts to an axis-1
    twin: the cumulative sums accumulate sequentially within each row
    (numpy's ``cumsum`` is a plain running sum — per-row bitwise equal
    to the 1-D call), the elementwise leftover arithmetic is identical,
    and the two ``searchsorted`` calls become stable merge-rank
    subtractions (comparison-only, integer-exact):

    * ``j_idx = searchsorted(E, d_prev, "left")`` — rank ``d_prev[i]``
      in the merge with queries *first* (ties ahead of equal ``E``),
      then subtract the ``i`` earlier queries (``d_prev`` is
      non-decreasing, so exactly ``i`` of them precede it).
    * ``i_star = searchsorted(D, E, "right")`` — rank ``E[j]`` in the
      merge with ``D`` first (ties behind equal ``D``), minus ``j``.

    Output planes are therefore bit-identical to calling
    :func:`_vose_row_sweep` once per row — the batch is pure
    scheduling, collapsing the heavy-row Python loop to one numpy
    pass per ``(deg, ns)`` group.
    """
    s_sc = scaled[smalls2d]
    l_sc = scaled[larges2d]
    g, ns = s_sc.shape
    nl = l_sc.shape[1]
    D = np.cumsum(1.0 - s_sc, axis=1)
    E = np.cumsum(l_sc - 1.0, axis=1)
    prob[smalls2d] = s_sc
    d_prev = np.concatenate((np.zeros((g, 1)), D[:, :-1]), axis=1)
    j_idx = _rowwise_merge_ranks(d_prev, E)[:, :ns] - np.arange(ns)
    np.minimum(j_idx, nl - 1, out=j_idx)  # rounding clamp (leftovers)
    alias[smalls2d] = np.take_along_axis(larges2d, j_idx, axis=1)
    i_star = _rowwise_merge_ranks(D, E)[:, ns:] - np.arange(nl)
    dem = i_star < ns
    dem[:, -1] = False
    if dem.any():
        rows, k = np.nonzero(dem)
        tgt = larges2d[rows, k]
        prob[tgt] = 1.0 + (E[dem] - D[rows, i_star[dem]])
        alias[tgt] = larges2d[rows, k + 1]


def _vose_row_scalar(prob, alias, perm, scaled,
                     i: int, i_end: int, j: int, j_end: int,
                     resid: float) -> None:
    """Finish one row's pairing sequentially (see :data:`_SCALAR_ROWS`).

    Must mirror the vectorised loop's arithmetic exactly — every
    update below is the elementwise twin of a batched statement
    (Python floats are the same IEEE-754 doubles, so interleaving the
    two engines cannot change a bit).  The row's remaining cells are
    pulled into plain lists up front and the finalised cells written
    back in one shot, keeping the per-step cost at list-indexing
    rather than numpy-scalar-indexing level.
    """
    smalls = perm[i:i_end].tolist()
    larges = perm[j:j_end].tolist()
    s_sc = scaled[perm[i:i_end]].tolist()
    l_sc = scaled[perm[j:j_end]].tolist()
    p, q, n_s, n_l = 0, 0, len(smalls), len(larges)
    cur = larges[q]
    idxs: list = []
    probs: list = []
    avals: list = []
    while True:
        if resid >= 1.0:
            if p < n_s:
                idxs.append(smalls[p])
                probs.append(s_sc[p])
                avals.append(cur)
                resid = resid + (s_sc[p] - 1.0)
                p += 1
            else:
                idxs.append(cur)
                probs.append(1.0)
                avals.append(cur)
                break
        elif q + 1 < n_l:
            nxt = larges[q + 1]
            idxs.append(cur)
            probs.append(resid)
            avals.append(nxt)
            resid = l_sc[q + 1] + (resid - 1.0)
            q += 1
            cur = nxt
        else:
            idxs.append(cur)
            probs.append(1.0)
            avals.append(cur)
            break
    ii = np.array(idxs, dtype=np.int64)
    prob[ii] = probs
    alias[ii] = avals


def build_alias_tables(indptr: np.ndarray, weight: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched per-row Vose construction over a CSR slot layout.

    Parameters
    ----------
    indptr:
        Row pointers: row ``r`` owns slots ``indptr[r]:indptr[r+1]``.
    weight:
        Non-negative slot weights (flat, aligned with the rows).

    Returns
    -------
    ``(prob, alias, total)`` — flat planes aligned with the slots
    (``alias`` holds **global** slot ids, always within the same row)
    plus the per-row weight totals.  Sampling row ``r``: draw a uniform
    cell among its ``deg`` slots and accept it with probability
    ``prob[cell]``, else take ``alias[cell]``; the resulting slot
    distribution is exactly ``weight / total[r]`` up to rounding.

    Rows with zero total weight (including empty rows) are left at the
    ``prob = 1`` / self-alias default — they cannot be sampled from and
    the samplers raise before ever reading their cells.

    The pairing per row is Vose's method with a fixed deterministic
    order (see the module docstring), processed for all rows in
    lockstep: each vectorised iteration finalises one cell per still-
    active row, so the loop runs ``max_row_degree`` times while total
    work stays ``O(slots)`` (the partition uses a lexsort here; a
    counting sort realises the theoretical ``O(m)`` bound, which is
    what the ledger charges — same convention as the bisect sampler's
    accounting).
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    weight = np.asarray(weight, dtype=np.float64)
    n = indptr.size - 1
    nnz = weight.size
    prob = np.ones(nnz, dtype=np.float64)
    alias = np.arange(nnz, dtype=np.int64)
    deg = np.diff(indptr)
    row_of = np.repeat(np.arange(n, dtype=np.int64), deg)
    # Sequential per-bin accumulation: the per-row total is a pure
    # function of the row's weight *sequence*, so a row rebuilt from a
    # sliced-out mini-CSR reproduces it bit-for-bit (the incremental
    # cache equality in inc_csr.py depends on this).
    total = np.bincount(row_of, weights=weight, minlength=n) if nnz \
        else np.zeros(n, dtype=np.float64)
    if nnz == 0:
        return prob, alias, total

    ok = total > 0.0
    # Normalise before scaling: w <= total entrywise, so w/total never
    # overflows even for subnormal totals (deg/total would).  Rows
    # with non-positive totals get junk scaled values but are excluded
    # from pairing below and keep the default planes.
    denom = np.where(ok, total, 1.0)
    scaled = (weight / denom[row_of]) * deg[row_of]

    # Stable within-row partition: smalls (scaled < 1) first, each
    # class in ascending slot order.  row_of is already sorted, so the
    # lexsort only reorders within rows and row r occupies
    # perm[indptr[r]:indptr[r+1]].
    is_large = scaled >= 1.0
    perm = np.lexsort((is_large, row_of))
    ns = np.bincount(row_of[~is_large], minlength=n)

    # Rows needing pairing work: at least one small and one large.
    # All-large rows are uniform (every cell exactly 1); all-small rows
    # only arise from rounding and fall to the leftover prob = 1 rule —
    # both are already the default plane values.
    pairing = ok & (ns > 0) & (ns < deg)
    # High-degree rows take the vectorised prefix-sum sweep (see
    # _SWEEP_DEG for why the split is keyed on the row alone).  Rows
    # sharing one (deg, ns) signature batch into a single 2-D pass
    # that is bit-identical to the per-row sweep (pure scheduling —
    # see _vose_rows_sweep_batch); singletons keep the 1-D call.
    heavy = np.flatnonzero(pairing & (deg >= _SWEEP_DEG))
    if heavy.size:
        heavy = heavy[np.lexsort((ns[heavy], deg[heavy]))]
        d_h, ns_h = deg[heavy], ns[heavy]
        cut = np.ones(heavy.size, dtype=bool)
        cut[1:] = (d_h[1:] != d_h[:-1]) | (ns_h[1:] != ns_h[:-1])
        starts = np.flatnonzero(cut)
        for a, b in zip(starts.tolist(),
                        np.append(starts[1:], heavy.size).tolist()):
            if b - a == 1:
                r = int(heavy[a])
                lo, split, hi = indptr[r], indptr[r] + ns[r], \
                    indptr[r + 1]
                _vose_row_sweep(prob, alias, perm[lo:split],
                                perm[split:hi], scaled)
            else:
                nsg, dg = int(ns_h[a]), int(d_h[a])
                base = indptr[heavy[a:b]][:, None]
                _vose_rows_sweep_batch(
                    prob, alias,
                    perm[base + np.arange(nsg)],
                    perm[base + np.arange(nsg, dg)],
                    scaled)
    act = np.flatnonzero(pairing & (deg < _SWEEP_DEG))
    i = indptr[act].copy()             # next small to consume
    i_end = indptr[act] + ns[act]
    j = i_end.copy()                   # current large
    j_end = indptr[act + 1].copy()
    resid = scaled[perm[j]].copy()     # running scaled mass of large j
    while i.size:
        if i.size <= _SCALAR_ROWS:
            for t in range(i.size):
                _vose_row_scalar(prob, alias, perm, scaled,
                                 int(i[t]), int(i_end[t]),
                                 int(j[t]), int(j_end[t]),
                                 float(resid[t]))
            break
        # All three masks snapshot the iteration-start state; the
        # branch bodies below mutate i/j, so deciding membership first
        # keeps a row from e.g. consuming its last small *and* being
        # finalised in the same pass.
        absorb = resid >= 1.0
        take = absorb & (i < i_end)
        demote = ~absorb
        step = demote & (j + 1 < j_end)
        finish = (absorb & ~take) | (demote & ~step)
        if take.any():
            s = perm[i[take]]
            prob[s] = scaled[s]
            alias[s] = perm[j[take]]
            resid[take] += scaled[s] - 1.0
            i[take] += 1
        if step.any():
            l = perm[j[step]]
            l2 = perm[j[step] + 1]
            prob[l] = resid[step]
            alias[l] = l2
            resid[step] = scaled[l2] + (resid[step] - 1.0)
            j[step] += 1
        if finish.any():
            # Current large lands on (up to rounding) exactly 1; any
            # untouched smalls/larges beyond it keep the default 1.
            prob[perm[j[finish]]] = 1.0
            keep = ~finish
            i, i_end = i[keep], i_end[keep]
            j, j_end = j[keep], j_end[keep]
            resid = resid[keep]
    np.clip(prob, 0.0, 1.0, out=prob)
    return prob, alias, total


class CSRAliasSampler:
    """O(1)-per-query per-row sampler over a CSR adjacency.

    Drop-in alternative to :class:`repro.sampling.rowsample.RowSampler`
    (same ``sample`` contract: global slot ids, weight-proportional
    within each queried row) that realises Lemma 2.6's accounting
    literally: linear preprocessing builds one alias table per row,
    after which a step is one uniform draw, a fan-out multiply, two
    gathers, and a comparison — constant work per walker regardless of
    the adjacency size, where the bisect sampler pays ``O(log m)``.

    Parameters
    ----------
    adj:
        The :class:`repro.graphs.multigraph.AdjacencyView` to sample
        from (``cumweight`` is not consulted).
    planes:
        Optional prebuilt ``(prob, alias, row_total)`` planes aligned
        with ``adj``'s slots (e.g. incrementally maintained by
        :class:`repro.sampling.inc_csr.IncrementalWalkCSR`, or
        reconstructed worker-side from shared memory).  When given,
        construction is pure view-wiring and charges nothing.
    """

    __slots__ = ("adj", "prob", "alias", "row_total", "_deg")

    def __init__(self, adj, planes=None) -> None:
        self.adj = adj
        if planes is None:
            self.prob, self.alias, self.row_total = build_alias_tables(
                adj.indptr, adj.weight)
            if ledger_active():
                charge(*P.sampler_build_cost(adj.weight.size),
                       label="alias_build")
        else:
            self.prob, self.alias, self.row_total = planes
        # Per-row degree, with unsampleable rows (zero total weight,
        # including empty rows) flagged as -1: the hot sample() path
        # then needs one gather that doubles as the isolated-vertex
        # guard.
        deg = np.diff(adj.indptr)
        self._deg = np.where(self.row_total > 0.0, deg, -1)

    @classmethod
    def from_planes(cls, adj, prob: np.ndarray, alias: np.ndarray,
                    row_total: np.ndarray) -> "CSRAliasSampler":
        """Wire a sampler around prebuilt planes (no build, no charge)."""
        return cls(adj, planes=(prob, alias, row_total))

    @property
    def plane_nbytes(self) -> int:
        """Bytes held by the alias planes (perf accounting).

        One ``(prob, alias)`` slot pair per CSR slot plus the per-row
        totals — exactly the footprint emitted-edge coalescing shrinks
        when it collapses heavy rows (DESIGN.md §11), which is what the
        coalesce benchmark reports.
        """
        return (self.prob.nbytes + self.alias.nbytes
                + self.row_total.nbytes)

    def row_totals(self) -> np.ndarray:
        """Total weight per row (the weighted degrees)."""
        return self.row_total

    def sample(self, rows: np.ndarray, seed=None) -> np.ndarray:
        """For each entry of ``rows``, one weight-proportional slot index.

        Returns global CSR slot positions, like
        :meth:`repro.sampling.rowsample.RowSampler.sample`.  Rows with
        zero total weight (isolated vertices, empty restricted rows)
        raise :class:`repro.errors.SamplingError`.

        One uniform per query: the integer part of ``u · deg`` picks
        the cell, the fractional part is the accept coin — the
        classic single-draw alias query, so the RNG stream advances by
        exactly ``rows.size`` doubles (the bisect sampler draws the
        same count; the *mapping* from draws to slots differs, which
        is why cross-sampler agreement is distributional, not bitwise).
        """
        rows = np.asarray(rows, dtype=np.int64)
        deg = self._deg[rows]
        if np.any(deg < 1):
            raise SamplingError("cannot sample a neighbour of an isolated "
                                "vertex")
        rng = as_generator(seed)
        scaled = rng.random(rows.size) * deg
        cell = scaled.astype(np.int64)
        # u < 1 keeps u·deg < deg mathematically; the minimum guards
        # the half-ulp case where the product rounds up to deg.
        np.minimum(cell, deg - 1, out=cell)
        slot = self.adj.indptr[rows] + cell
        accept = (scaled - cell) < self.prob[slot]
        out = np.where(accept, slot, self.alias[slot])
        if ledger_active():
            charge(*P.sampler_query_cost(rows.size), label="alias_query")
        return out

    def pmf(self) -> np.ndarray:
        """Per-slot probability each row's table encodes (testing).

        For every non-empty sampleable row the returned slice should
        match ``weight_row / total_row`` up to rounding.
        """
        deg = np.diff(self.adj.indptr)
        n = deg.size
        row_of = np.repeat(np.arange(n, dtype=np.int64), deg)
        denom = np.maximum(deg[row_of], 1).astype(np.float64)
        out = self.prob / denom
        np.add.at(out, self.alias, (1.0 - self.prob) / denom)
        return out


class AliasTable:
    """O(1)-per-query sampler for a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights, at least one strictly positive.  They
        need not be normalised.
    """

    __slots__ = ("n", "prob", "alias", "total")

    def __init__(self, weights: np.ndarray) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise SamplingError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise SamplingError("weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise SamplingError("total weight must be positive")
        self.n = w.size
        self.total = total

        # Deliberately NOT delegated to build_alias_tables: the batched
        # construction pairs cells in a different (equally exact) order,
        # and changing this table's prob/alias planes would silently
        # change every fixed-seed consumer outside the walk stack
        # (e.g. spectral_sparsify's seeded picks).  The historical LIFO
        # Vose loop is kept bit-for-bit.
        #
        # Normalise before scaling: w <= total entrywise, so w/total
        # never overflows even for subnormal totals.
        scaled = (w / total) * self.n
        prob = np.ones(self.n, dtype=np.float64)
        alias = np.arange(self.n, dtype=np.int64)

        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # leftovers are 1 up to rounding
        for i in small + large:
            prob[i] = 1.0
        self.prob = np.clip(prob, 0.0, 1.0)
        self.alias = alias
        charge(*P.sampler_build_cost(self.n), label="alias_build")

    def sample(self, size: int, seed=None) -> np.ndarray:
        """Draw ``size`` i.i.d. indices distributed ∝ the weights."""
        if size < 0:
            raise SamplingError("size must be non-negative")
        rng = as_generator(seed)
        cells = rng.integers(0, self.n, size=size)
        accept = rng.random(size) < self.prob[cells]
        out = np.where(accept, cells, self.alias[cells])
        charge(*P.sampler_query_cost(size), label="alias_sample")
        return out

    def pmf(self) -> np.ndarray:
        """Exact probability mass function the table encodes.

        Useful for testing: reconstructs ``P[i]`` from (prob, alias),
        which should match ``weights / weights.sum()`` up to rounding.
        """
        p = self.prob / self.n
        out = p.copy()
        np.add.at(out, self.alias, (1.0 - self.prob) / self.n)
        return out
