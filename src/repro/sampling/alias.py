"""Alias-method weighted sampling (Lemma 2.6 / [HS19]).

An :class:`AliasTable` preprocesses a weight vector in ``O(n)`` time
(charged as ``(O(n), O(log n))`` on the PRAM ledger, the [HS19] bound)
after which each sample costs ``O(1)``: draw a uniform cell, compare
against its cut-off, take either the cell or its alias.  Queries are
fully vectorised — one call draws millions of independent samples.

The construction is Vose's two-pointer variant: cells with scaled
weight below 1 are topped up from cells above 1.  It is exact up to
floating-point rounding; a final clamp makes every probability valid.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.pram import charge
from repro.pram import primitives as P
from repro.rng import as_generator

__all__ = ["AliasTable"]


class AliasTable:
    """O(1)-per-query sampler for a fixed discrete distribution.

    Parameters
    ----------
    weights:
        Non-negative weights, at least one strictly positive.  They
        need not be normalised.
    """

    __slots__ = ("n", "prob", "alias", "total")

    def __init__(self, weights: np.ndarray) -> None:
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise SamplingError("weights must be a non-empty 1-D array")
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise SamplingError("weights must be finite and non-negative")
        total = float(w.sum())
        if total <= 0:
            raise SamplingError("total weight must be positive")
        self.n = w.size
        self.total = total

        # Normalise before scaling: w <= total entrywise, so w/total
        # never overflows even for subnormal totals.
        scaled = (w / total) * self.n
        prob = np.ones(self.n, dtype=np.float64)
        alias = np.arange(self.n, dtype=np.int64)

        small = [i for i in range(self.n) if scaled[i] < 1.0]
        large = [i for i in range(self.n) if scaled[i] >= 1.0]
        scaled = scaled.copy()
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # leftovers are 1 up to rounding
        for i in small + large:
            prob[i] = 1.0
        self.prob = np.clip(prob, 0.0, 1.0)
        self.alias = alias
        charge(*P.sampler_build_cost(self.n), label="alias_build")

    def sample(self, size: int, seed=None) -> np.ndarray:
        """Draw ``size`` i.i.d. indices distributed ∝ the weights."""
        if size < 0:
            raise SamplingError("size must be non-negative")
        rng = as_generator(seed)
        cells = rng.integers(0, self.n, size=size)
        accept = rng.random(size) < self.prob[cells]
        out = np.where(accept, cells, self.alias[cells])
        charge(*P.sampler_query_cost(size), label="alias_sample")
        return out

    def pmf(self) -> np.ndarray:
        """Exact probability mass function the table encodes.

        Useful for testing: reconstructs ``P[i]`` from (prob, alias),
        which should match ``weights / weights.sum()`` up to rounding.
        """
        p = self.prob / self.n
        out = p.copy()
        np.add.at(out, self.alias, (1.0 - self.prob) / self.n)
        return out
