"""Batched per-row weighted sampling over a CSR structure.

``TerminalWalks`` needs, for millions of concurrent walkers, "sample a
neighbour of *my current vertex* proportional to edge weight".  The
alias method (Lemma 2.6) answers one distribution at a time; here we
need a *different* distribution per walker.  The trick: store a single
globally increasing cumulative-weight array over all CSR rows; then a
walker at vertex ``x`` draws a uniform value inside row ``x``'s value
interval and one vectorised ``searchsorted`` over the global array
resolves every walker's choice simultaneously.

Per query this costs ``O(log deg)`` sequential bisection — a standard
CREW PRAM primitive with depth ``O(log m)`` for the whole batch, which
is within the ``O(log m)`` per-step depth budget of Lemma 5.4.  The
ledger charge uses the [HS19] ``O(1)``-per-query accounting so ledger
totals match the paper's stated bounds (the bisection is an artefact of
the numpy realisation, not of the algorithm).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import AdjacencyView
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator

__all__ = ["RowSampler"]


class RowSampler:
    """Samples CSR-adjacency entries weight-proportionally, per row."""

    __slots__ = ("adj", "_base", "_top")

    def __init__(self, adj: AdjacencyView) -> None:
        self.adj = adj
        indptr = adj.indptr
        cum = adj.cumweight
        n = indptr.size - 1
        # base[x] = cumulative weight before row x; top[x] = after row x.
        base = np.zeros(n, dtype=np.float64)
        nonfirst = indptr[:-1] > 0
        base[nonfirst] = cum[indptr[:-1][nonfirst] - 1]
        top = np.zeros(n, dtype=np.float64)
        nonempty = indptr[1:] > 0
        top[nonempty] = cum[indptr[1:][nonempty] - 1]
        self._base = base
        self._top = top
        if ledger_active():
            charge(*P.sampler_build_cost(n), label="rowsampler_build")

    def row_totals(self) -> np.ndarray:
        """Total weight per row (the weighted degrees)."""
        return self._top - self._base

    def sample(self, rows: np.ndarray, seed=None) -> np.ndarray:
        """For each entry of ``rows``, one weight-proportional slot index.

        Returns global CSR slot positions; use ``adj.neighbor[slot]``,
        ``adj.weight[slot]``, ``adj.edge_id[slot]`` to decode.  Rows with
        zero total weight (isolated vertices) raise — a walker can never
        stand on an isolated vertex in a connected graph.
        """
        rows = np.asarray(rows, dtype=np.int64)
        base = self._base[rows]
        span = self._top[rows] - base
        if np.any(span <= 0):
            raise SamplingError("cannot sample a neighbour of an isolated "
                                "vertex")
        rng = as_generator(seed)
        # Right-open draw keeps us strictly inside the row interval.
        x = base + rng.random(rows.size) * span
        slot = np.searchsorted(self.adj.cumweight, x, side="right")
        # Guard against floating-point landing one slot out of the row.
        lo = self.adj.indptr[rows]
        hi = self.adj.indptr[rows + 1] - 1
        if np.any(lo > hi):
            # An empty interior row can only reach this point when the
            # derived base/top bounds disagree with the CSR (e.g.
            # inconsistent shipped planes); clipping would silently
            # return a slot from a *different* row.
            raise SamplingError("cannot sample from an empty adjacency "
                                "row (CSR and cumulative bounds disagree)")
        slot = np.clip(slot, lo, hi)
        if ledger_active():
            charge(*P.sampler_query_cost(rows.size), label="rowsampler_query")
        return slot
