"""Vectorised multi-walker random-walk engine.

``TerminalWalks`` (Algorithm 4) launches **2m walkers at once** — one
from each endpoint of every multi-edge — and steps them synchronously
until each reaches the terminal set ``C``.  This module implements that
synchronous stepping:

* each round, all still-active walkers sample a weight-proportional
  incident edge via :class:`repro.sampling.rowsample.RowSampler` and
  move across it, accumulating the edge's *resistance* ``1/w``;
* walkers standing on a terminal vertex retire immediately (a walker
  that *starts* on a terminal retires after zero steps — that is the
  paper's convention for an endpoint already in ``C``).

Cost accounting mirrors Lemma 5.4: each synchronous round charges
``(active, 1)`` ledger work/depth (an O(1) sampler query per active
walker, all in parallel), so the ledger total is ``Σ_e |W(e)|`` work
and ``max_e |W(e)|`` depth — exactly the quantities the lemma bounds
by ``O(m)`` and ``O(log m)`` when ``V∖C`` is 5-DD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge
from repro.pram import primitives as P
from repro.rng import as_generator
from repro.sampling.rowsample import RowSampler

__all__ = ["WalkEngine", "WalkResult"]


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a batch of terminal walks.

    Attributes
    ----------
    terminal:
        Vertex of ``C`` where each walker stopped.
    resistance:
        ``Σ_{f ∈ walk} 1/w(f)`` accumulated along each walk (0 for
        walkers that started on a terminal vertex).
    length:
        Number of edges each walker traversed.
    rounds:
        Number of synchronous rounds (== max length).
    """

    terminal: np.ndarray
    resistance: np.ndarray
    length: np.ndarray
    rounds: int


class WalkEngine:
    """Reusable walk engine for one graph + terminal-set combination.

    Parameters
    ----------
    graph:
        The multigraph to walk on.
    is_terminal:
        Boolean mask over vertices; walks stop on ``True`` vertices.
    """

    def __init__(self, graph: MultiGraph, is_terminal: np.ndarray) -> None:
        is_terminal = np.asarray(is_terminal, dtype=bool)
        if is_terminal.shape != (graph.n,):
            raise SamplingError("is_terminal must have one flag per vertex")
        if not is_terminal.any():
            raise SamplingError("terminal set must be non-empty")
        self.graph = graph
        self.is_terminal = is_terminal
        self.adj = graph.adjacency()
        self.sampler = RowSampler(self.adj)

    def run(self, starts: np.ndarray, seed=None,
            max_steps: int = 10_000) -> WalkResult:
        """Walk every ``starts[i]`` until it reaches the terminal set.

        Raises :class:`SamplingError` if any walk exceeds ``max_steps``
        (with a 5-DD complement the odds of even 100 steps are
        ≤ (1/5)^100 — exceeding the cap means the precondition is
        broken, not bad luck).
        """
        starts = np.asarray(starts, dtype=np.int64)
        rng = as_generator(seed)
        k = starts.size
        position = starts.copy()
        resistance = np.zeros(k, dtype=np.float64)
        length = np.zeros(k, dtype=np.int64)
        active = ~self.is_terminal[position]
        rounds = 0
        while active.any():
            if rounds >= max_steps:
                raise SamplingError(
                    f"{int(active.sum())} walks exceeded {max_steps} steps; "
                    f"is V∖C really (almost) independent / 5-DD?")
            idx = np.nonzero(active)[0]
            slots = self.sampler.sample(position[idx], seed=rng)
            position[idx] = self.adj.neighbor[slots]
            resistance[idx] += 1.0 / self.adj.weight[slots]
            length[idx] += 1
            active[idx] = ~self.is_terminal[position[idx]]
            charge(*P.walk_step_cost(idx.size), label="walk_steps")
            rounds += 1
        return WalkResult(terminal=position, resistance=resistance,
                          length=length, rounds=rounds)

    def run_chunked(self, starts: np.ndarray, seed=None,
                    max_steps: int = 10_000,
                    workers: int | None = None,
                    chunks: int | None = None) -> WalkResult:
        """:meth:`run` split over walker chunks (thread-pool friendly).

        Walkers are independent, so chunking changes nothing
        statistically (each chunk gets an independent child stream) and
        demonstrates the fork/join structure: the ledger records the
        chunks as parallel branches.
        """
        from repro.pram.executor import chunk_ranges, parallel_map

        starts = np.asarray(starts, dtype=np.int64)
        rng = as_generator(seed)
        if chunks is None:
            chunks = max(1, (workers or 1))
        pieces = chunk_ranges(starts.size, chunks)
        streams = rng.spawn(len(pieces))

        def one(args):
            (lo, hi), stream = args
            return self.run(starts[lo:hi], seed=stream, max_steps=max_steps)

        results = parallel_map(one, list(zip(pieces, streams)),
                               workers=workers)
        if not results:
            return WalkResult(np.empty(0, np.int64), np.empty(0),
                              np.empty(0, np.int64), 0)
        return WalkResult(
            terminal=np.concatenate([r.terminal for r in results]),
            resistance=np.concatenate([r.resistance for r in results]),
            length=np.concatenate([r.length for r in results]),
            rounds=max(r.rounds for r in results))
