"""Vectorised multi-walker random-walk engine.

``TerminalWalks`` (Algorithm 4) launches **one walker per endpoint of
every logical multi-edge** and steps them synchronously until each
reaches the terminal set ``C``.  This module implements that
synchronous stepping:

* each round, all still-active walkers sample a weight-proportional
  incident edge — via the CSR-aligned alias planes of
  :class:`repro.sampling.alias.CSRAliasSampler` (Lemma 2.6: O(1) per
  query) or the global-bisection
  :class:`repro.sampling.rowsample.RowSampler` (O(log m) per query),
  selected by the ``sampler`` knob / ``REPRO_SAMPLER`` env var — and
  move across it, accumulating the *per-copy* resistance of the edge
  they crossed;
* walkers standing on a terminal vertex retire immediately (a walker
  that *starts* on a terminal retires after zero steps — that is the
  paper's convention for an endpoint already in ``C``).

Two hot-path properties keep late elimination rounds cheap:

* **Restricted CSR** — walkers only ever sample from rows of
  *non-terminal* vertices (a walker on a terminal has retired), so the
  engine builds adjacency rows for the interior only:
  O(edges incident to V∖C) instead of O(m) per round.
* **Walker compaction** — retired walkers are filtered out of the state
  arrays each round, so a round costs O(active walkers), not O(total
  walkers).  The compacted loop consumes the RNG stream in exactly the
  same order as the naive loop (active walkers in ascending id order),
  so results are bit-identical (``compact=False`` keeps the reference
  loop for tests).

Implicit multiplicities (Lemma 3.2 splits, see DESIGN.md) need no
expansion here: a split graph's transition distribution equals the
unsplit one (``k`` copies of ``w/k`` sum to ``w``), and crossing any of
a group's copies accrues resistance ``mult/w`` — the engine precomputes
that per CSR slot.

Cost accounting mirrors Lemma 5.4: each synchronous round charges
``(active, 1)`` ledger work/depth (an O(1) sampler query per active
walker, all in parallel), so the ledger total is ``Σ_e |W(e)|`` work
and ``max_e |W(e)|`` depth — exactly the quantities the lemma bounds
by ``O(m)`` and ``O(log m)`` when ``V∖C`` is 5-DD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator
from repro.sampling.alias import CSRAliasSampler
from repro.sampling.rowsample import RowSampler

__all__ = ["WalkEngine", "WalkResult", "SAMPLERS", "default_sampler",
           "make_row_sampler"]

#: Recognised row samplers: ``alias`` = per-row alias planes (Lemma
#: 2.6, O(1)/query), ``bisect`` = global cumulative-weight bisection
#: (the historical realisation, O(log m)/query).
SAMPLERS = ("alias", "bisect")

def _parse_sampler(env: str | None) -> str:
    value = (env or "alias").strip().lower()
    if value not in SAMPLERS:
        raise ValueError(
            f"REPRO_SAMPLER must be one of {SAMPLERS}, got {env!r}")
    return value


def default_sampler() -> str:
    """Sampler name from ``REPRO_SAMPLER`` env var (default: alias).

    Raises :class:`ValueError` for anything outside :data:`SAMPLERS` —
    the sampler changes how the RNG stream maps to walk transitions,
    so a typo must fail loudly, not silently pick a different walk
    distribution realisation.  Env-cached like the other ``default_*``
    getters (:func:`repro.pram.executor._env_cached`).
    """
    from repro.pram.executor import _env_cached

    return _env_cached("REPRO_SAMPLER", _parse_sampler)


def make_row_sampler(adj, kind: str):
    """Build the row sampler ``kind`` over adjacency ``adj``."""
    if kind == "alias":
        return CSRAliasSampler(adj)
    if kind == "bisect":
        return RowSampler(adj)
    raise ValueError(f"unknown sampler {kind!r}; choose from {SAMPLERS}")


def _walk_chunk_task(arrays, meta, lo, hi, stream, ledger):
    """Shippable chunk task: step walkers ``[lo, hi)`` of a batch.

    This is the process-backend counterpart of the closure
    :meth:`WalkEngine.run_chunked` dispatches in-process: ``arrays``
    holds the engine's immutable state (restricted CSR, per-slot
    resistances, terminal mask, the sampler's derived planes — alias
    ``prob``/``alias``/row totals for ``sampler="alias"``, per-row
    ``base``/``top`` cumulative bounds for ``"bisect"``) plus the full
    ``starts`` batch — reconstructed worker-side as read-only
    shared-memory views — and the chunk itself is just slice bounds
    plus a spawned RNG stream.

    Engine assembly is pure view-wiring (the parent ships the
    sampler's derived arrays, so nothing is recomputed per chunk) and
    charges nothing; the sub-ledger is installed only around the
    stepping loop, mirroring the in-process path where the sampler was
    built once by the parent before the chunks fork.  Ledger totals
    are therefore backend-invariant.
    """
    from repro.graphs.multigraph import AdjacencyView
    from repro.pram.ledger import use_ledger

    kind = meta.get("sampler", "bisect")
    adj = AdjacencyView(indptr=arrays["indptr"],
                        neighbor=arrays["neighbor"],
                        weight=arrays["weight"],
                        # Stepping never decodes edge ids — placeholder.
                        edge_id=np.empty(0, dtype=np.int64),
                        # Only the bisect sampler consults cumweight.
                        cumweight=arrays["cumweight"] if kind == "bisect"
                        else np.empty(0, dtype=np.float64))
    if kind == "alias":
        # Pure view-wiring (mirrors the bisect branch): every derived
        # array ships, nothing is recomputed per chunk.
        sampler = CSRAliasSampler.__new__(CSRAliasSampler)
        sampler.adj = adj
        sampler.prob = arrays["alias_prob"]
        sampler.alias = arrays["alias_alias"]
        sampler.row_total = arrays["alias_total"]
        sampler._deg = arrays["alias_deg"]
    else:
        sampler = RowSampler.__new__(RowSampler)
        sampler.adj = adj
        sampler._base = arrays["sampler_base"]
        sampler._top = arrays["sampler_top"]
    engine = WalkEngine.__new__(WalkEngine)
    engine.graph = None
    engine.is_terminal = arrays["is_terminal"]
    engine.adj = adj
    engine.sampler = sampler
    engine.sampler_kind = kind
    engine._slot_resistance = arrays["slot_resistance"]
    starts = arrays["starts"][lo:hi]
    if ledger is None:
        return engine.run(starts, seed=stream,
                          max_steps=meta["max_steps"])
    with use_ledger(ledger):
        return engine.run(starts, seed=stream,
                          max_steps=meta["max_steps"])


@dataclass(frozen=True)
class WalkResult:
    """Outcome of a batch of terminal walks.

    Attributes
    ----------
    terminal:
        Vertex of ``C`` where each walker stopped.
    resistance:
        ``Σ_{f ∈ walk} mult(f)/w(f)`` accumulated along each walk (0 for
        walkers that started on a terminal vertex).
    length:
        Number of edges each walker traversed.
    rounds:
        Number of synchronous rounds (== max length).
    """

    terminal: np.ndarray
    resistance: np.ndarray
    length: np.ndarray
    rounds: int


class WalkEngine:
    """Reusable walk engine for one graph + terminal-set combination.

    Parameters
    ----------
    graph:
        The multigraph to walk on (implicit multiplicities supported).
    is_terminal:
        Boolean mask over vertices; walks stop on ``True`` vertices.
    restricted:
        Build CSR rows for non-terminal vertices only (default).  Pass
        ``False`` to build the full cached adjacency — the seed
        behaviour, kept for benchmark baselines.
    sampler:
        ``"alias"`` (per-row alias planes, O(1)/query) or ``"bisect"``
        (global cumulative-weight bisection).  ``None`` (default)
        consults the ``REPRO_SAMPLER`` env var lazily (default
        ``"alias"``).  For a fixed seed and a fixed sampler, results
        are bit-identical across backends and worker counts; the two
        samplers map the RNG stream to transitions differently, so
        cross-sampler agreement is distributional (DESIGN.md §8).
    """

    def __init__(self, graph: MultiGraph, is_terminal: np.ndarray,
                 restricted: bool = True,
                 sampler: str | None = None) -> None:
        is_terminal = np.asarray(is_terminal, dtype=bool)
        if is_terminal.shape != (graph.n,):
            raise SamplingError("is_terminal must have one flag per vertex")
        if not is_terminal.any():
            raise SamplingError("terminal set must be non-empty")
        self.graph = graph
        self.is_terminal = is_terminal
        if restricted:
            self.adj = graph.adjacency_restricted(~is_terminal)
        else:
            self.adj = graph.adjacency()
        self.sampler_kind = sampler if sampler is not None \
            else default_sampler()
        self.sampler = make_row_sampler(self.adj, self.sampler_kind)
        # Resistance of crossing ONE logical copy of each CSR slot's
        # edge group: a copy weighs w/mult, so 1/(w/mult) = mult/w.
        if graph.mult is None:
            self._slot_resistance = 1.0 / self.adj.weight
        else:
            self._slot_resistance = \
                graph.mult[self.adj.edge_id] / self.adj.weight

    @classmethod
    def from_adjacency(cls, adj, slot_mult: np.ndarray | None,
                       is_terminal: np.ndarray,
                       sampler: str | None = None,
                       alias_planes=None) -> "WalkEngine":
        """Engine over a prebuilt (restricted) adjacency view.

        This is how the elimination loops reuse an incrementally
        maintained CSR (:class:`repro.sampling.inc_csr.IncrementalWalkCSR`)
        instead of rebuilding the adjacency per round.  ``slot_mult``
        gives each slot's logical copy count (``None`` = all ones); the
        view's ``edge_id`` may index any backing store — the engine only
        consumes per-slot quantities.  ``sampler`` selects the row
        sampler as in the constructor; with ``sampler="alias"`` the
        caller may hand incrementally maintained
        ``(prob, alias, row_total)`` planes via ``alias_planes`` so
        nothing is rebuilt (:meth:`IncrementalWalkCSR.alias_planes`).
        """
        is_terminal = np.asarray(is_terminal, dtype=bool)
        if not is_terminal.any():
            raise SamplingError("terminal set must be non-empty")
        engine = cls.__new__(cls)
        engine.graph = None
        engine.is_terminal = is_terminal
        engine.adj = adj
        kind = sampler if sampler is not None else default_sampler()
        engine.sampler_kind = kind
        if kind == "alias" and alias_planes is not None:
            engine.sampler = CSRAliasSampler.from_planes(adj, *alias_planes)
        else:
            engine.sampler = make_row_sampler(adj, kind)
        if slot_mult is None:
            engine._slot_resistance = 1.0 / adj.weight
        else:
            engine._slot_resistance = slot_mult / adj.weight
        return engine

    @property
    def state_nbytes_per_walker(self) -> int:
        """Bytes per launched walker (perf accounting): live stepping
        state (position + resistance + length + id) plus the result
        arrays (terminal + resistance + length) held for the full
        batch."""
        return (8 + 8 + 8 + 8) + (8 + 8 + 8)

    def run(self, starts: np.ndarray, seed=None,
            max_steps: int = 10_000, compact: bool = True) -> WalkResult:
        """Walk every ``starts[i]`` until it reaches the terminal set.

        Raises :class:`SamplingError` if any walk exceeds ``max_steps``
        (with a 5-DD complement the odds of even 100 steps are
        ≤ (1/5)^100 — exceeding the cap means the precondition is
        broken, not bad luck).  ``compact=False`` runs the
        O(total walkers)-per-round reference loop; results are
        bit-identical for the same seed.
        """
        starts = np.asarray(starts, dtype=np.int64)
        rng = as_generator(seed)
        if not compact:
            return self._run_reference(starts, rng, max_steps)
        k = starts.size
        terminal = starts.copy()
        resistance = np.zeros(k, dtype=np.float64)
        length = np.zeros(k, dtype=np.int64)
        # Compacted live state: `alive` holds the (ascending) walker ids
        # still in flight; parallel arrays hold only their state.
        alive = np.nonzero(~self.is_terminal[starts])[0]
        pos = starts[alive]
        res = np.zeros(alive.size, dtype=np.float64)
        ln = np.zeros(alive.size, dtype=np.int64)
        track = ledger_active()
        rounds = 0
        while alive.size:
            if rounds >= max_steps:
                raise SamplingError(
                    f"{alive.size} walks exceeded {max_steps} steps; "
                    f"is V∖C really (almost) independent / 5-DD?")
            slots = self.sampler.sample(pos, seed=rng)
            pos = self.adj.neighbor[slots]
            res = res + self._slot_resistance[slots]
            ln = ln + 1
            done = self.is_terminal[pos]
            if track:
                charge(*P.walk_step_cost(alive.size), label="walk_steps")
            rounds += 1
            if done.any():
                ids = alive[done]
                terminal[ids] = pos[done]
                resistance[ids] = res[done]
                length[ids] = ln[done]
                keep = ~done
                alive = alive[keep]
                pos = pos[keep]
                res = res[keep]
                ln = ln[keep]
        return WalkResult(terminal=terminal, resistance=resistance,
                          length=length, rounds=rounds)

    def _run_reference(self, starts: np.ndarray, rng,
                       max_steps: int) -> WalkResult:
        """Uncompacted loop: O(total walkers) bookkeeping per round."""
        k = starts.size
        position = starts.copy()
        resistance = np.zeros(k, dtype=np.float64)
        length = np.zeros(k, dtype=np.int64)
        active = ~self.is_terminal[position]
        track = ledger_active()
        rounds = 0
        while active.any():
            if rounds >= max_steps:
                raise SamplingError(
                    f"{int(active.sum())} walks exceeded {max_steps} steps; "
                    f"is V∖C really (almost) independent / 5-DD?")
            idx = np.nonzero(active)[0]
            slots = self.sampler.sample(position[idx], seed=rng)
            position[idx] = self.adj.neighbor[slots]
            resistance[idx] += self._slot_resistance[slots]
            length[idx] += 1
            active[idx] = ~self.is_terminal[position[idx]]
            if track:
                charge(*P.walk_step_cost(idx.size), label="walk_steps")
            rounds += 1
        return WalkResult(terminal=position, resistance=resistance,
                          length=length, rounds=rounds)

    def run_chunked(self, starts: np.ndarray, seed=None,
                    max_steps: int = 10_000,
                    workers: int | None = None,
                    chunks: int | None = None,
                    ctx=None) -> WalkResult:
        """:meth:`run` split over walker chunks (thread-pool friendly).

        Walkers are independent, so chunking changes nothing
        statistically (each chunk gets an independent child stream) and
        demonstrates the fork/join structure: the ledger records the
        chunks as parallel branches (works add, depths max — the joined
        depth equals the unchunked one, the longest walk).

        With an :class:`repro.pram.ExecutionContext` ``ctx``, the chunk
        layout comes from ``ctx.item_chunks`` — a function of the walker
        count and the chunk policy (explicit ``chunk_items`` or the
        ``REPRO_CHUNK_ITEMS`` env default), never of the worker count —
        so for a fixed seed and fixed chunk policy the result is
        **bit-identical regardless of the worker count or backend**
        (they only schedule the fixed chunks).  Under the process backend the engine's
        immutable arrays ship once per call through shared memory and
        each chunk pickles only its slice bounds and seed-spawn key
        (see :func:`_walk_chunk_task`); the serial and thread backends
        step the same chunks in-process.  The explicit
        ``chunks``/``workers`` parameters remain for callers that want
        a specific layout.
        """
        from repro.pram.executor import ExecutionContext, chunk_ranges

        starts = np.asarray(starts, dtype=np.int64)
        rng = as_generator(seed)
        if ctx is None:
            if chunks is None:
                chunks = max(1, (workers or 1))
            pieces = chunk_ranges(starts.size, chunks)
            ctx = ExecutionContext(workers=workers)
        else:
            pieces = ctx.item_chunks(starts.size) if chunks is None \
                else chunk_ranges(starts.size, chunks)

        if ctx.resolve_backend() in ("process", "distributed") \
                and len(pieces) > 1:
            arrays = {"indptr": self.adj.indptr,
                      "neighbor": self.adj.neighbor,
                      "weight": self.adj.weight,
                      "slot_resistance": self._slot_resistance,
                      "is_terminal": self.is_terminal,
                      "starts": starts}
            if self.sampler_kind == "alias":
                arrays["alias_prob"] = self.sampler.prob
                arrays["alias_alias"] = self.sampler.alias
                arrays["alias_total"] = self.sampler.row_total
                arrays["alias_deg"] = self.sampler._deg
            else:
                arrays["cumweight"] = self.adj.cumweight
                arrays["sampler_base"] = self.sampler._base
                arrays["sampler_top"] = self.sampler._top
            results = ctx.run_shipped(_walk_chunk_task, arrays,
                                      {"max_steps": max_steps,
                                       "sampler": self.sampler_kind},
                                      pieces, rng=rng, scope="walk")
        else:

            def one(lo: int, hi: int, stream) -> WalkResult:
                return self.run(starts[lo:hi], seed=stream,
                                max_steps=max_steps)

            results = ctx.run_chunks(one, pieces, rng=rng, scope="walk")
        if not results:
            return WalkResult(np.empty(0, np.int64), np.empty(0),
                              np.empty(0, np.int64), 0)
        return WalkResult(
            terminal=np.concatenate([r.terminal for r in results]),
            resistance=np.concatenate([r.resistance for r in results]),
            length=np.concatenate([r.length for r in results]),
            rounds=max(r.rounds for r in results))
