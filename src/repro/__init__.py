"""repro — A Simple and Efficient Parallel Laplacian Solver.

Full reproduction of Sachdeva & Zhao, SPAA 2023 (arXiv:2304.14345):
a parallel Laplacian linear-system solver built purely from random
sampling — block Cholesky factorization over 5-DD vertex subsets with
Schur complements approximated by short C-terminal random walks.

Quickstart
----------
>>> import numpy as np
>>> from repro import generators, LaplacianSolver
>>> g = generators.grid2d(30, 30)
>>> solver = LaplacianSolver(g, seed=0)
>>> b = np.zeros(g.n); b[0], b[-1] = 1.0, -1.0
>>> x = solver.solve(b, eps=1e-6)

Compact representation (performance architecture)
-------------------------------------------------
The α-bounded splitting of Lemma 3.2 conceptually multiplies the edge
count by ``⌈1/α⌉ = Θ(ε⁻² log² n)``; this implementation never
materialises those copies.  ``MultiGraph`` carries an optional ``mult``
array — row ``i`` stands for ``mult[i]`` logical parallel copies of
total weight ``w[i]`` — so ``naive_split``/``leverage_split`` are O(m)
in time *and* memory, Laplacian-level code sees the exact unsplit
totals, and the walk layer samples from a compact CSR while scaling
traversed resistance by the local copy count.  Per elimination round,
adjacency is rebuilt by an O(m + n) counting sort restricted to the
rows walkers can actually sample (the interior), and retired walkers
are compacted out of the stepping loop.  ``graph.m`` counts stored
groups; ``graph.m_logical`` counts the paper's multi-edges.  See
DESIGN.md §1-§2 for the invariants.

Parallel execution
------------------
The embarrassingly parallel phases (walker stepping, column-blocked
solves) dispatch through :class:`repro.pram.ExecutionContext` on a
pluggable backend: ``serial``, ``thread`` (default; numpy kernels
release the GIL), or ``process`` (walker chunks ship to a persistent
pool through ``multiprocessing.shared_memory``).  Pick with
``SolverOptions(workers=…, backend=…)`` or the ``REPRO_WORKERS`` /
``REPRO_BACKEND`` env vars.  **Determinism contract:** a fixed seed
produces bit-identical graphs, solutions, and cost-ledger totals for
every backend × worker-count combination (DESIGN.md §6–§7).

Measure the hot path (writes BENCH_hotpath.json; ``--smoke`` for the
CI-sized check)::

    PYTHONPATH=src python benchmarks/bench_p01_hotpath.py

Package layout
--------------
* :mod:`repro.core` — the paper's algorithms (Algorithms 1-6).
* :mod:`repro.graphs` — multigraph substrate and generators.
* :mod:`repro.sampling` — parallel sampling + random-walk engine.
* :mod:`repro.linalg` — Jacobi operator, CG, Loewner-order oracles.
* :mod:`repro.pram` — CREW PRAM work/depth cost ledger.
* :mod:`repro.serve` — solver-as-a-service: resident chain cache +
  micro-batched solves (``repro serve`` / ``repro client``).
* :mod:`repro.baselines` — KS16 approximate Cholesky, CG, direct.
* :mod:`repro.apps` — applications (learning, flows, spanning trees...).
* :mod:`repro.theory` — concentration and complexity-fit utilities.
"""

from repro.config import (
    SolverOptions,
    default_options,
    theorem_1_1_options,
    theorem_1_2_options,
    practical_options,
)
from repro.core import (
    LaplacianSolver,
    solve_laplacian,
    SolveReport,
    block_cholesky,
    ApplyCholeskyOperator,
    approx_schur,
    terminal_walks,
    five_dd_subset,
    naive_split,
)
from repro.errors import (
    ReproError,
    GraphStructureError,
    NotConnectedError,
    ConvergenceError,
    FactorizationError,
    SamplingError,
    ServiceError,
)
from repro.graphs import MultiGraph, generators, laplacian
from repro.pram import ExecutionContext, WorkDepthLedger, use_ledger
from repro.serve import ChainCache, ServeResult, SolverService

__version__ = "1.0.0"

__all__ = [
    "SolverOptions",
    "default_options",
    "theorem_1_1_options",
    "theorem_1_2_options",
    "practical_options",
    "LaplacianSolver",
    "solve_laplacian",
    "SolveReport",
    "block_cholesky",
    "ApplyCholeskyOperator",
    "approx_schur",
    "terminal_walks",
    "five_dd_subset",
    "naive_split",
    "ReproError",
    "GraphStructureError",
    "NotConnectedError",
    "ConvergenceError",
    "FactorizationError",
    "SamplingError",
    "MultiGraph",
    "generators",
    "laplacian",
    "ServiceError",
    "WorkDepthLedger",
    "use_ledger",
    "ExecutionContext",
    "SolverService",
    "ChainCache",
    "ServeResult",
    "__version__",
]
