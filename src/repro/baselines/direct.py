"""Direct solvers (ground truth and the classic dense baseline).

``DirectSolver`` grounds the benchmark comparisons: dense Cholesky-like
factorisation of the grounded Laplacian (delete one row/column — the
standard trick for the rank-(n-1) system), ``O(n³)`` preprocessing and
``O(n²)`` per solve, exact up to rounding.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.linalg.ops import project_out_ones

__all__ = ["DirectSolver"]


class DirectSolver:
    """Exact Laplacian solves via a grounded dense factorisation.

    Ground vertex ``n-1``: for connected ``G`` the principal submatrix
    ``L₀ = L[:-1, :-1]`` is SPD, and ``x = [L₀⁻¹ b[:-1]; 0]`` solves
    ``L x = b`` for any ``b ⊥ 1``; re-centring yields the
    pseudo-inverse solution.
    """

    def __init__(self, graph: MultiGraph) -> None:
        require_connected(graph)
        self.n = graph.n
        L = laplacian(graph).toarray()
        self._cho = scipy.linalg.cho_factor(L[:-1, :-1])

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Exact ``L⁺ b`` via the grounded Cholesky factor."""
        b = project_out_ones(np.asarray(b, dtype=np.float64))
        x = np.zeros(self.n)
        x[:-1] = scipy.linalg.cho_solve(self._cho, b[:-1])
        return project_out_ones(x)
