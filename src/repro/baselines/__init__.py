"""Baseline solvers the paper positions itself against.

* :mod:`repro.baselines.ks16` — the sequential approximate Cholesky
  solver of Kyng & Sachdeva (FOCS 2016), the "simplest and most
  practical sequential solver" the abstract cites; our paper is its
  parallel extension.
* :mod:`repro.baselines.direct` — dense pseudoinverse / sparse LU.
* :mod:`repro.baselines.cg_baseline` — unpreconditioned and
  Jacobi-preconditioned conjugate gradient.
"""

from repro.baselines.ks16 import KS16Solver, approximate_cholesky
from repro.baselines.direct import DirectSolver
from repro.baselines.cg_baseline import (
    cg_solve,
    jacobi_pcg_solve,
)

__all__ = [
    "KS16Solver",
    "approximate_cholesky",
    "DirectSolver",
    "cg_solve",
    "jacobi_pcg_solve",
]
