"""Conjugate-gradient baselines.

* :func:`cg_solve` — unpreconditioned CG; iteration count scales with
  ``sqrt(κ(L))``, so it degrades badly on bottlenecked graphs
  (barbells) — the behaviour benchmark E12 exposes.
* :func:`jacobi_pcg_solve` — diagonal (Jacobi) preconditioning; the
  cheapest standard preconditioner, included as the intermediate
  baseline between plain CG and structured preconditioners.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.cg import CGResult, conjugate_gradient

__all__ = ["cg_solve", "jacobi_pcg_solve"]


def cg_solve(graph: MultiGraph, b: np.ndarray, eps: float = 1e-8,
             max_iter: int | None = None) -> CGResult:
    """Unpreconditioned CG on ``L_G x = b``."""
    return conjugate_gradient(laplacian(graph), b, tol=eps,
                              max_iter=max_iter, matvec_edges=graph.m)


def jacobi_pcg_solve(graph: MultiGraph, b: np.ndarray, eps: float = 1e-8,
                     max_iter: int | None = None) -> CGResult:
    """PCG with the diagonal preconditioner ``D⁻¹``."""
    L = laplacian(graph)
    d = L.diagonal()
    inv = np.where(d > 0, 1.0 / np.maximum(d, 1e-300), 0.0)
    return conjugate_gradient(L, b, tol=eps,
                              preconditioner=lambda r: inv * r,
                              max_iter=max_iter, matvec_edges=graph.m)
