"""Sequential approximate Cholesky for Laplacians — Kyng–Sachdeva 2016.

The baseline the paper extends: eliminate vertices in uniformly random
order; when eliminating ``v``, instead of adding the full clique on its
neighbours (Gaussian elimination), *sample* the clique — for each
multi-edge ``e = (v, u)`` incident to ``v``, draw another incident
multi-edge ``f = (v, z)`` with probability ``w(f)/w(v)`` and add the
multi-edge ``(u, z)`` with weight ``w(e)·w(f) / (w(e) + w(f))``.

Unbiasedness check (pair ``e, f``): iteration ``e`` picks ``f`` w.p.
``w(f)/w(v)`` and iteration ``f`` picks ``e`` w.p. ``w(e)/w(v)``; both
add weight ``w(e)w(f)/(w(e)+w(f))``, totalling ``w(e)w(f)/w(v)`` in
expectation — the clique weight of Gaussian elimination.

The elimination produces a lower-triangular approximate factorization
``L ≈ 𝓛𝓛ᵀ`` used as a PCG preconditioner.  Like the original, the
input should be split into α-bounded multi-edges (``α⁻¹ = Θ(log² n)``)
for the concentration argument; smaller split factors work in practice
and are exposed for benchmarking.

This implementation is intentionally *sequential* — that is the whole
point of the comparison: the paper's contribution is making this
sampling paradigm parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.linalg.cg import CGResult, conjugate_gradient
from repro.linalg.ops import project_out_ones
from repro.rng import as_generator

__all__ = ["approximate_cholesky", "ApproxCholeskyFactor", "KS16Solver"]


@dataclass
class ApproxCholeskyFactor:
    """``L ≈ 𝓛 𝓛ᵀ`` with ``𝓛`` lower triangular in elimination order.

    ``perm[i]`` is the vertex eliminated at step ``i``; the last column
    is the all-zero kernel column (the final vertex).  ``solve``
    applies ``(𝓛𝓛ᵀ)⁺`` by two triangular substitutions.
    """

    Lfactor: sp.csc_matrix
    perm: np.ndarray

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Apply ``(𝓛 𝓛ᵀ)⁺ b`` — forward/backward substitution."""
        from scipy.sparse.linalg import spsolve_triangular

        bp = project_out_ones(np.asarray(b, dtype=np.float64))[self.perm]
        n = bp.shape[0]
        # The genuine kernel makes the last diagonal entry 0; solve the
        # leading (n-1)×(n-1) triangle and put 0 in the kernel slot.
        Lt = self.Lfactor[: n - 1, : n - 1].tocsr()
        y = np.zeros(n)
        y[: n - 1] = spsolve_triangular(Lt, bp[: n - 1], lower=True)
        z = np.zeros(n)
        z[: n - 1] = spsolve_triangular(Lt.T.tocsr(), y[: n - 1],
                                        lower=False)
        out = np.empty(n)
        out[self.perm] = z
        return project_out_ones(out)


def approximate_cholesky(graph: MultiGraph, seed=None,
                         split_factor: float = 1.0) -> ApproxCholeskyFactor:
    """Run KS16 randomised elimination and return the factor.

    ``split_factor`` scales the α-bounded splitting: each edge is
    duplicated ``⌈split_factor · log₂² n⌉`` times (KS16 Theorem 1.1 uses
    Θ(log² n); smaller values trade approximation quality for speed).
    """
    require_connected(graph)
    rng = as_generator(seed)
    n = graph.n
    log2n = math.log2(max(n, 2))
    copies = max(1, int(round(split_factor * log2n * log2n)))

    # Adjacency as per-vertex python dict-of-lists of (nbr, weight):
    # elimination mutates neighbourhoods, so a dynamic structure is the
    # honest sequential implementation.
    nbrs: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for a, b, w in zip(graph.u.tolist(), graph.v.tolist(),
                       graph.w.tolist()):
        wc = w / copies
        for _ in range(copies):
            nbrs[a].append((b, wc))
            nbrs[b].append((a, wc))

    perm = rng.permutation(n).astype(np.int64)
    order = np.empty(n, dtype=np.int64)
    order[perm] = np.arange(n)  # order[v] = elimination step of v

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    eliminated = np.zeros(n, dtype=bool)

    for step in range(n - 1):
        v = int(perm[step])
        # Compact v's current neighbourhood (drop eliminated targets).
        live = [(z, w) for (z, w) in nbrs[v] if not eliminated[z]]
        nbrs[v] = []
        eliminated[v] = True
        if not live:
            # Isolated by sampling noise: give the column a unit diagonal
            # so the triangular factor stays non-singular (the
            # preconditioner acts as the identity on this coordinate).
            rows.append(step)
            cols.append(step)
            vals.append(1.0)
            continue
        targets = np.fromiter((z for z, _ in live), dtype=np.int64,
                              count=len(live))
        weights = np.fromiter((w for _, w in live), dtype=np.float64,
                              count=len(live))
        wv = float(weights.sum())

        # Column of the factor: (1/sqrt(w_v)) * L[:, v] restricted.
        rows.append(step)
        cols.append(step)
        vals.append(math.sqrt(wv))
        # Aggregate parallel edges per neighbour for the column entries.
        agg: dict[int, float] = {}
        for z, w in live:
            agg[z] = agg.get(z, 0.0) + w
        inv_sqrt = 1.0 / math.sqrt(wv)
        for z, w in agg.items():
            rows.append(int(order[z]))
            cols.append(step)
            vals.append(-w * inv_sqrt)

        # CliqueSample: for each incident multi-edge e=(v,u), sample
        # f=(v,z) ∝ w(f); add (u, z) with weight w_e w_f/(w_e + w_f).
        picks = rng.choice(len(live), size=len(live),
                           p=weights / wv)
        for i, (u, we) in enumerate(live):
            z, wf = live[int(picks[i])]
            if z == u:
                continue
            wnew = we * wf / (we + wf)
            nbrs[u].append((z, wnew))
            nbrs[z].append((u, wnew))

    # Kernel column for the last vertex.
    rows.append(n - 1)
    cols.append(n - 1)
    vals.append(0.0)
    Lfactor = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
    return ApproxCholeskyFactor(Lfactor=Lfactor, perm=perm)


class KS16Solver:
    """PCG with the KS16 approximate Cholesky preconditioner."""

    def __init__(self, graph: MultiGraph, seed=None,
                 split_factor: float = 1.0) -> None:
        self.graph = graph
        self.factor = approximate_cholesky(graph, seed=seed,
                                           split_factor=split_factor)
        self._L = laplacian(graph)

    def solve(self, b: np.ndarray, eps: float = 1e-8,
              max_iter: int | None = None) -> np.ndarray:
        """PCG solve of ``L x = b`` with the KS16 preconditioner."""
        return self.solve_report(b, eps=eps, max_iter=max_iter).x

    def solve_report(self, b: np.ndarray, eps: float = 1e-8,
                     max_iter: int | None = None) -> CGResult:
        """Like :meth:`solve` but returning the full :class:`CGResult`."""
        return conjugate_gradient(self._L, b, tol=eps,
                                  preconditioner=self.factor.solve,
                                  max_iter=max_iter,
                                  matvec_edges=self.graph.m)
