"""Exception hierarchy for :mod:`repro`.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphStructureError(ReproError):
    """A graph violates a structural requirement (e.g. disconnected input,
    vertex index out of range, negative edge weight)."""


class NotConnectedError(GraphStructureError):
    """The graph must be connected for the requested operation.

    Laplacians of disconnected graphs have a kernel of dimension larger
    than one; the solver (Fact 2.3 of the paper) requires a connected
    graph so that ``ker(L) = span(1)``.
    """


class EmptyGraphError(GraphStructureError):
    """Operation requires at least one vertex/edge."""


class ConvergenceError(ReproError):
    """An iterative method failed to reach the requested tolerance within
    its iteration budget."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class NumericalBreakdownError(ConvergenceError):
    """An iterate became non-finite (NaN/Inf) mid-iteration.

    Subclasses :class:`ConvergenceError` so existing fallbacks (the
    solver's Richardson→PCG escalation) keep catching it; carries the
    broken column indices and the iteration at which the breakdown was
    detected so containment logic can quarantine precisely.
    """

    def __init__(self, message: str,
                 column_indices: tuple[int, ...] = (),
                 iteration: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message, iterations=iteration, residual=residual)
        self.column_indices = tuple(int(c) for c in column_indices)
        self.iteration = iteration


class ServiceError(ReproError):
    """The serving layer rejected or could not complete a request.

    Raised by :class:`repro.serve.SolverService` for unknown graph
    keys, submissions to a closed service, and micro-batches whose
    shared solve failed for every cohabiting request.
    """


class ServiceOverloadedError(ServiceError):
    """The service shed this request under admission control.

    Raised when the pending-request count is at the
    ``REPRO_SERVE_MAX_PENDING`` budget or the circuit breaker is open
    (DESIGN.md §13).  **Retriable**: nothing about the request was
    wrong — resubmit after ``retry_after`` seconds.  The HTTP front
    end maps it to ``503`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class TransportError(ReproError):
    """The distributed transport lost a peer or exhausted recovery.

    Raised by :mod:`repro.pram.transport` for handshake refusals,
    peers that vanish mid-message (EOF/reset), frames that stay
    corrupt past the bounded retransmit budget, and unacknowledged
    messages.  Classified as *transient* by the execution layer: a
    chunk lost to a transport failure is re-dispatched (to a
    replacement worker) under the ambient
    :class:`repro.pram.executor.RetryPolicy`.
    """


class ExecutionError(ReproError):
    """A dispatched chunk failed after exhausting its retry budget.

    Raised by the execution layer when a chunk could not be completed
    even after the :class:`repro.pram.executor.RetryPolicy`'s bounded
    re-dispatches (worker crashes, per-chunk timeouts, injected
    faults).  ``chunk`` identifies the failing chunk, ``attempts`` how
    many dispatch attempts were made, and the last transient cause is
    chained as ``__cause__``.
    """

    def __init__(self, message: str, chunk: int | None = None,
                 attempts: int | None = None,
                 cause: BaseException | None = None) -> None:
        super().__init__(message)
        self.chunk = chunk
        self.attempts = attempts
        if cause is not None:
            self.__cause__ = cause


class FactorizationError(ReproError):
    """Block Cholesky construction failed (e.g. a level became empty or a
    5-DD subset could not be found)."""


class SamplingError(ReproError):
    """A random-sampling primitive was given an invalid distribution
    (e.g. non-positive total weight)."""


class DimensionMismatchError(ReproError):
    """Vector/matrix dimensions are inconsistent with the graph."""
