"""Keyed LRU cache of resident solver chains (DESIGN.md §12).

The expensive artifact is the block Cholesky chain; the cheap operation
is a blocked apply.  :class:`ChainCache` keeps built
:class:`repro.core.solver.LaplacianSolver` instances resident under a
byte budget measured by the observable payload size
(:attr:`repro.core.chain.CholeskyChain.nbytes` — exactly what one
shipped-solve shared segment would hold), with:

* **LRU eviction** — least-recently-*used* entry goes first once the
  resident payload bytes exceed the budget; the most recent entry is
  always retained even when it alone exceeds the budget (a cache that
  cannot hold its only chain would livelock rebuilding it).
* **single-flight builds** — concurrent misses on one key run the
  builder once; every waiter gets the same solver (or the builder's
  exception, which is not cached — a later miss retries).
* **eager teardown** — evicted and closed entries release their
  shipped-solve shared-memory segments immediately
  (:meth:`LaplacianSolver.close`), keeping
  :func:`repro.pram.executor.live_segment_names` honest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.core.solver import LaplacianSolver
from repro.pram.executor import _env_cached

__all__ = ["ChainCache", "default_serve_cache_bytes",
           "DEFAULT_CACHE_BYTES"]

#: Default resident-chain byte budget (256 MiB).
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024


def default_serve_cache_bytes() -> int:
    """Resident-chain byte budget from ``REPRO_SERVE_CACHE_BYTES``.

    Plain byte count; must be a non-negative integer (``0`` keeps only
    the most recently used chain).  Defaults to
    :data:`DEFAULT_CACHE_BYTES`.
    """

    def parse(env: str | None) -> int:
        if not env or not env.strip():
            return DEFAULT_CACHE_BYTES
        try:
            value = int(env)
        except ValueError:
            value = -1
        if value < 0:
            raise ValueError(
                f"REPRO_SERVE_CACHE_BYTES must be a non-negative "
                f"integer byte count, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_CACHE_BYTES", parse)


class _Build:
    """Single-flight token: one in-progress build and its outcome."""

    __slots__ = ("done", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.error: BaseException | None = None


class ChainCache:
    """Thread-safe LRU of resident solvers keyed by canonical hash.

    ``max_bytes=None`` (default) resolves ``REPRO_SERVE_CACHE_BYTES``
    lazily at every eviction decision, so a long-lived server picks up
    budget changes after :func:`repro.config.reset_env_caches`.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, LaplacianSolver] = OrderedDict()
        self._builds: dict[str, _Build] = {}
        self._max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.evictions = 0

    # -- sizing --------------------------------------------------------------

    @property
    def max_bytes(self) -> int:
        """The byte budget in effect right now (lazy env lookup)."""
        if self._max_bytes is not None:
            return self._max_bytes
        return default_serve_cache_bytes()

    def total_bytes(self) -> int:
        """Resident chain payload bytes across all entries."""
        with self._lock:
            return self._total_bytes_locked()

    def _total_bytes_locked(self) -> int:
        return sum(s.chain.nbytes for s in self._entries.values())

    # -- lookup --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> tuple[str, ...]:
        """Resident keys, least-recently-used first."""
        with self._lock:
            return tuple(self._entries)

    def get(self, key: str) -> LaplacianSolver | None:
        """The resident solver for ``key`` (LRU-touched), or ``None``.

        Counts a hit or a miss; use :meth:`get_or_build` when a miss
        should build.
        """
        with self._lock:
            solver = self._entries.get(key)
            if solver is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return solver

    def get_or_build(self, key: str,
                     build: Callable[[], LaplacianSolver]
                     ) -> LaplacianSolver:
        """Resident solver for ``key``, building (single-flight) on miss.

        The builder runs outside the cache lock; concurrent misses on
        the same key wait on the first caller's build.  Waiters count
        as a miss at arrival and a hit when the finished entry is
        handed to them, so ``builds`` (not ``misses``) is the number of
        factorizations actually paid for.
        """
        while True:
            with self._lock:
                solver = self._entries.get(key)
                if solver is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return solver
                pending = self._builds.get(key)
                if pending is None:
                    self.misses += 1
                    pending = _Build()
                    self._builds[key] = pending
                    owner = True
                else:
                    owner = False
            if not owner:
                pending.done.wait()
                if pending.error is not None:
                    raise pending.error
                # Loop: the owner inserted the entry (or it was already
                # evicted under a tiny budget, in which case this caller
                # becomes the next owner).
                continue
            try:
                solver = build()
            except BaseException as exc:
                pending.error = exc
                with self._lock:
                    self._builds.pop(key, None)
                pending.done.set()
                raise
            with self._lock:
                self._entries[key] = solver
                self._entries.move_to_end(key)
                self.builds += 1
                self._builds.pop(key, None)
                evicted = self._evict_locked()
            pending.done.set()
            for victim in evicted:
                victim.close()
            return solver

    def _evict_locked(self) -> list[LaplacianSolver]:
        budget = self.max_bytes
        evicted: list[LaplacianSolver] = []
        while len(self._entries) > 1 \
                and self._total_bytes_locked() > budget:
            _, victim = self._entries.popitem(last=False)
            self.evictions += 1
            evicted.append(victim)
        return evicted

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop every entry and release its shm resources. Idempotent."""
        with self._lock:
            victims = list(self._entries.values())
            self._entries.clear()
        for victim in victims:
            victim.close()

    def stats(self) -> dict:
        """Counters + residency snapshot (JSON-friendly)."""
        with self._lock:
            resident = {key: int(s.chain.nbytes)
                        for key, s in self._entries.items()}
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "evictions": self.evictions,
                "resident": len(resident),
                "resident_bytes": sum(resident.values()),
                "budget_bytes": int(self.max_bytes),
                "entries": resident}
