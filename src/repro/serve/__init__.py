"""Solver-as-a-service (DESIGN.md §12).

The production shape of "factor once, solve many": a long-lived
:class:`SolverService` keeps built solver chains resident in a keyed
LRU byte-budgeted :class:`ChainCache` (canonical graph hash →
chain, single-flight builds, ``keep_graphs=False`` streaming) and
fuses concurrent single-RHS requests into one BLAS-3 ``solve_many``
via a :class:`MicroBatcher` time window — with the library's
determinism and fault contracts re-proven at the service boundary
(``tests/test_serve.py``).

Front ends: in-process (``SolverService.submit``/``solve``), HTTP
(``SolverService.serve_http`` — stdlib asyncio, JSON), and the CLI
(``repro serve`` / ``repro client``).

Overload behaviour (DESIGN.md §13): a bounded pending-request budget
(``REPRO_SERVE_MAX_PENDING``) sheds excess load with a retriable
:class:`repro.errors.ServiceOverloadedError` (HTTP 503 +
``Retry-After``), and a circuit breaker opens after
``REPRO_SERVE_BREAKER_FAILS`` consecutive batch failures — failing
fast until a half-open probe succeeds after
``REPRO_SERVE_BREAKER_COOLDOWN_S``.

Knobs (env-cached like every ``REPRO_*`` setting, reset on service
start via :func:`repro.config.reset_env_caches`):
``REPRO_SERVE_WINDOW_MS``, ``REPRO_SERVE_MAX_BATCH``,
``REPRO_SERVE_CACHE_BYTES``, ``REPRO_SERVE_MAX_PENDING``,
``REPRO_SERVE_BREAKER_FAILS``, ``REPRO_SERVE_BREAKER_COOLDOWN_S``,
``REPRO_SERVE_READ_TIMEOUT_S``; the batch retry budget shares
``REPRO_RETRIES``.
"""

from repro.serve.batcher import (
    MicroBatcher,
    ServeResult,
    default_serve_max_batch,
    default_serve_window_ms,
)
from repro.serve.cache import ChainCache, default_serve_cache_bytes
from repro.serve.keys import (
    canonical_edge_arrays,
    graph_fingerprint,
    options_token,
    solver_cache_key,
)
from repro.serve.service import (
    GraphSpec,
    SolverService,
    default_serve_max_pending,
    default_serve_breaker_fails,
    default_serve_breaker_cooldown_s,
)

__all__ = [
    "SolverService",
    "GraphSpec",
    "ChainCache",
    "MicroBatcher",
    "ServeResult",
    "solver_cache_key",
    "graph_fingerprint",
    "options_token",
    "canonical_edge_arrays",
    "default_serve_window_ms",
    "default_serve_max_batch",
    "default_serve_cache_bytes",
    "default_serve_max_pending",
    "default_serve_breaker_fails",
    "default_serve_breaker_cooldown_s",
]
