"""Canonical cache keys for resident solver chains (DESIGN.md §12).

The serving cache maps a *problem identity* to one resident
factorization.  Identity has two halves:

* the **canonical multigraph** — the stored edge-group multiset with
  endpoints normalised to ``(min, max)``, dtypes widened to
  ``int64``/``float64``, implicit unit multiplicities made explicit,
  and rows lexicographically sorted.  Edge-array *order* and dtype
  variants of the same graph therefore hash identically; relabelled
  vertices, changed weights, and regrouped parallel edges (two unit
  groups vs one ``mult=2`` group — different stored layouts, hence
  different walk realisations) hash distinctly.
* the **chain-affecting options + seed** — exactly the
  :class:`repro.config.SolverOptions` fields that change the built
  chain's bits.  Runtime knobs that the determinism contract
  (DESIGN.md §6) proves result-neutral (``workers``, ``backend``,
  ``retries``, ``chunk_timeout``, ``degrade``, ``ship_solves``,
  ``keep_graphs``, ``incremental_csr``) are deliberately excluded, so
  a thread-backend client and a process-backend client share one
  resident chain.  Lazy fields that *do* affect bits (``sampler``,
  ``coalesce_emitted``, ``chunk_items``) are resolved against the
  environment at key time.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.config import SolverOptions, default_options
from repro.graphs.multigraph import MultiGraph

__all__ = ["canonical_edge_arrays", "graph_fingerprint",
           "options_token", "solver_cache_key"]

#: SolverOptions fields whose value changes the built chain's bits
#: (splitting layout, elimination randomness, preconditioner shape).
_CHAIN_FIELDS = (
    "splitting", "alpha_scale", "min_vertices", "dd_fraction",
    "dd_candidate_fraction", "dd_threshold", "jacobi_eps",
    "richardson_delta", "max_walk_steps", "lev_sample_K",
    "chunk_columns",
)


def canonical_edge_arrays(graph: MultiGraph
                          ) -> tuple[np.ndarray, np.ndarray,
                                     np.ndarray, np.ndarray]:
    """``(u, v, w, mult)`` in canonical form: undirected endpoints
    ``(min, max)``, widened dtypes, explicit multiplicities, rows
    lexicographically sorted."""
    u = np.minimum(graph.u, graph.v).astype(np.int64, copy=False)
    v = np.maximum(graph.u, graph.v).astype(np.int64, copy=False)
    w = graph.w.astype(np.float64, copy=False)
    if graph.mult is None:
        mult = np.ones(graph.m, dtype=np.int64)
    else:
        mult = graph.mult.astype(np.int64, copy=False)
    # np.lexsort keys run least- to most-significant.
    order = np.lexsort((mult, w, v, u))
    return u[order], v[order], w[order], mult[order]


def graph_fingerprint(graph: MultiGraph) -> str:
    """sha256 over the canonical multigraph (hex digest)."""
    h = hashlib.sha256()
    h.update(b"repro-graph-v1")
    h.update(int(graph.n).to_bytes(8, "little", signed=False))
    for arr in canonical_edge_arrays(graph):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def options_token(options: SolverOptions) -> str:
    """Stable string of the chain-affecting option fields.

    Lazy env-backed fields are resolved *now* — two processes with
    different ``REPRO_SAMPLER`` environments must not share a chain.
    """
    parts = [f"{name}={getattr(options, name)!r}"
             for name in _CHAIN_FIELDS]
    parts.append(f"sampler={options.resolve_sampler()}")
    parts.append(f"coalesce={options.resolve_coalesce()}")
    if options.chunk_items is not None:
        chunk_items = options.chunk_items
    else:
        from repro.pram.executor import default_chunk_items
        chunk_items = default_chunk_items()
    parts.append(f"chunk_items={chunk_items}")
    return ";".join(parts)


def solver_cache_key(graph: MultiGraph,
                     options: SolverOptions | None = None,
                     seed=None) -> str:
    """The serving-cache key for ``(graph, options, seed)``.

    ``seed=None`` falls back to ``options.seed``; the effective seed
    must be an int or ``None`` (a live ``numpy`` Generator is not
    replayable, so it cannot name a cacheable build).
    """
    options = options or default_options()
    if seed is None:
        seed = options.seed
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"cache keys need a replayable seed (int or None), "
            f"got {type(seed).__name__}")
    h = hashlib.sha256()
    h.update(graph_fingerprint(graph).encode())
    h.update(b"|")
    h.update(options_token(options).encode())
    h.update(b"|")
    h.update(f"seed={None if seed is None else int(seed)}".encode())
    return h.hexdigest()[:32]
