"""Micro-batching of single-RHS solve requests (DESIGN.md §12).

PR 2 measured one blocked ``solve_many`` at ~4× the throughput of
looping ``k`` single-RHS solves, so the serving layer's job is to turn
``k`` concurrent users into one BLAS-3 block.  The
:class:`MicroBatcher` buckets requests by ``(cache key, method)``,
holds each bucket open for a small time window
(``REPRO_SERVE_WINDOW_MS``) or until ``REPRO_SERVE_MAX_BATCH``
requests arrive, then assembles the columns **in submission order**
into one ``(n, k)`` block, runs a single batched solve in the
service's solve executor, and scatters per-column results —
``x[:, i]``, ``column_status[i]``, per-column iterations and residuals
— back to each caller's future.

Determinism at the batch level: the assembled block is exactly what a
direct ``solve_many`` on the same resident chain would receive, so the
scattered columns are bit-identical to that call (the service's
batching-equivalence contract).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.pram.executor import _env_cached

__all__ = ["MicroBatcher", "ServeResult", "default_serve_window_ms",
           "default_serve_max_batch", "DEFAULT_WINDOW_MS",
           "DEFAULT_MAX_BATCH"]

#: Default micro-batch gathering window (milliseconds).
DEFAULT_WINDOW_MS = 2.0
#: Default flush-early batch width.
DEFAULT_MAX_BATCH = 64


def default_serve_window_ms() -> float:
    """Micro-batch window from ``REPRO_SERVE_WINDOW_MS`` (ms, ≥ 0).

    ``0`` still batches requests that arrive within the same event-loop
    tick; the default :data:`DEFAULT_WINDOW_MS` trades ~2 ms of added
    latency for the blocked-solve throughput win.
    """

    def parse(env: str | None) -> float:
        if not env or not env.strip():
            return DEFAULT_WINDOW_MS
        try:
            value = float(env)
        except ValueError:
            value = -1.0
        if value < 0 or not np.isfinite(value):
            raise ValueError(
                f"REPRO_SERVE_WINDOW_MS must be a non-negative number "
                f"of milliseconds, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_WINDOW_MS", parse)


def default_serve_max_batch() -> int:
    """Flush-early width from ``REPRO_SERVE_MAX_BATCH`` (int, ≥ 1)."""

    def parse(env: str | None) -> int:
        if not env or not env.strip():
            return DEFAULT_MAX_BATCH
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"REPRO_SERVE_MAX_BATCH must be a positive integer, "
                f"got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_MAX_BATCH", parse)


@dataclass(frozen=True)
class ServeResult:
    """One caller's share of a micro-batched solve."""

    #: The solution column (owned copy, ``(n,)``).
    x: np.ndarray
    #: This request's ``BlockSolveReport.column_status`` entry —
    #: ``richardson``/``pcg``/``dense`` (DESIGN.md §9 ladder).
    status: str
    #: Iterations this column took (batch total when the solver did not
    #: report per-column counts).
    iterations: int
    #: 2-norm of ``L x - b`` for this column.
    residual_2norm: float
    #: The batch-level method string (e.g. ``richardson+pcg``).
    method: str
    #: How many requests shared the batch.
    batched_k: int
    #: Monotone batch sequence number (the ``chunk=`` coordinate of
    #: ``stage=serve`` fault directives).
    batch_seq: int
    #: Cache key the batch solved against.
    key: str


class _Pending:
    __slots__ = ("b", "eps", "plan", "future")

    def __init__(self, b, eps, plan, future) -> None:
        self.b = b
        self.eps = eps
        self.plan = plan
        self.future = future


class _Bucket:
    __slots__ = ("key", "method", "solver", "requests", "timer")

    def __init__(self, key, method, solver) -> None:
        self.key = key
        self.method = method
        self.solver = solver
        self.requests: list[_Pending] = []
        self.timer: asyncio.Task | None = None


class MicroBatcher:
    """Collects single-RHS requests into blocked solves.

    ``runner(solver, B, eps_col, method, plan, batch_seq)`` executes
    the batched solve (in the service's solve executor) and returns a
    :class:`repro.core.solver.BlockSolveReport`.  ``window_ms`` /
    ``max_batch`` of ``None`` resolve their env knobs lazily per
    bucket, so a reset environment takes effect without a restart.

    All bucket state is touched only from the owning event loop;
    cross-thread entry goes through the service's
    ``run_coroutine_threadsafe``.
    """

    def __init__(self, runner, executor, *,
                 window_ms: float | None = None,
                 max_batch: int | None = None) -> None:
        self._runner = runner
        self._executor = executor
        self._window_ms = window_ms
        self._max_batch = max_batch
        self._buckets: dict[tuple[str, str], _Bucket] = {}
        self._seq = 0
        self._active_flushes = 0
        self.batches = 0
        self.requests = 0
        self.batch_sizes: dict[int, int] = {}

    # -- knob resolution -----------------------------------------------------

    def window_seconds(self) -> float:
        """Gathering window in seconds (constructor override or env)."""
        ms = self._window_ms if self._window_ms is not None \
            else default_serve_window_ms()
        return ms / 1000.0

    def max_batch(self) -> int:
        """Flush-early width (constructor override or env)."""
        if self._max_batch is not None:
            return self._max_batch
        return default_serve_max_batch()

    # -- submission ----------------------------------------------------------

    async def submit(self, key: str, solver, b: np.ndarray, eps: float,
                     method: str, plan=None) -> ServeResult:
        """Queue one request; resolves when its batch completes."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket_key = (key, method)
        bucket = self._buckets.get(bucket_key)
        if bucket is None:
            bucket = _Bucket(key, method, solver)
            self._buckets[bucket_key] = bucket
            bucket.timer = asyncio.ensure_future(
                self._flush_after_window(bucket_key, bucket))
        bucket.requests.append(_Pending(b, float(eps), plan, future))
        self.requests += 1
        if len(bucket.requests) >= self.max_batch():
            self._detach(bucket_key, bucket)
            if bucket.timer is not None:
                bucket.timer.cancel()
            await self._flush(bucket)
        return await future

    async def _flush_after_window(self, bucket_key, bucket) -> None:
        try:
            await asyncio.sleep(self.window_seconds())
        except asyncio.CancelledError:
            return
        self._detach(bucket_key, bucket)
        await self._flush(bucket)

    def _detach(self, bucket_key, bucket) -> None:
        if self._buckets.get(bucket_key) is bucket:
            del self._buckets[bucket_key]

    # -- the batched solve ---------------------------------------------------

    async def _flush(self, bucket: _Bucket) -> None:
        requests = bucket.requests
        bucket.requests = []
        if not requests:
            return
        seq = self._seq
        self._seq += 1
        # Submission order is column order: what a caller batching by
        # hand with np.stack([...], axis=1) would assemble.
        B = np.stack([r.b for r in requests], axis=1)
        eps_col = np.array([r.eps for r in requests], dtype=np.float64)
        plan = next((r.plan for r in requests if r.plan is not None),
                    None)
        loop = asyncio.get_running_loop()
        self._active_flushes += 1
        try:
            report = await loop.run_in_executor(
                self._executor, self._runner, bucket.solver, B, eps_col,
                bucket.method, plan, seq)
        except BaseException as exc:
            # Batch-level failure (retry budget exhausted, solver bug):
            # every cohabiting request sees it.  Column-level damage
            # never lands here — the quarantine/escalation ladder keeps
            # solve_many returning (DESIGN.md §9).
            for r in requests:
                if not r.future.done():
                    r.future.set_exception(exc)
            return
        finally:
            self._active_flushes -= 1
        self.batches += 1
        k = len(requests)
        self.batch_sizes[k] = self.batch_sizes.get(k, 0) + 1
        per_col = report.per_column_iterations
        status = report.column_status
        for i, r in enumerate(requests):
            if r.future.done():
                continue
            r.future.set_result(ServeResult(
                x=np.ascontiguousarray(report.x[:, i]),
                status=str(status[i]) if status is not None
                else report.method,
                iterations=int(per_col[i]) if per_col is not None
                else int(report.iterations),
                residual_2norm=float(report.residual_2norms[i]),
                method=report.method,
                batched_k=k,
                batch_seq=seq,
                key=bucket.key))

    # -- lifecycle -----------------------------------------------------------

    async def shutdown(self, exc: BaseException) -> None:
        """Fail unflushed requests with ``exc``; drain in-flight batches."""
        buckets = list(self._buckets.values())
        self._buckets.clear()
        for bucket in buckets:
            if bucket.timer is not None:
                bucket.timer.cancel()
            for r in bucket.requests:
                if not r.future.done():
                    r.future.set_exception(exc)
        while self._active_flushes:
            await asyncio.sleep(0.005)

    def stats(self) -> dict:
        """Counters (JSON-friendly)."""
        sizes = dict(sorted(self.batch_sizes.items()))
        return {"batches": self.batches, "requests": self.requests,
                "batch_sizes": {str(k): v for k, v in sizes.items()},
                "max_batch_seen": max(sizes) if sizes else 0,
                "mean_batch": (self.requests / self.batches)
                if self.batches else 0.0}
