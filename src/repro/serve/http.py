"""Minimal stdlib HTTP/1.1 front end over :class:`SolverService`.

No web framework in the dependency budget, and none needed: the wire
surface is four JSON endpoints, each one connection = one request
(``Connection: close``), parsed with ``asyncio`` stream primitives.
Handlers run as tasks on the service's event loop, so concurrent
``POST /solve`` connections land in the same micro-batch window —
HTTP callers get the blocked-solve win with zero client coordination.

Endpoints
---------
* ``GET /healthz`` → ``{"ok": true, "graphs": N}``
* ``GET /stats`` → :meth:`SolverService.stats`
* ``POST /graphs`` — body ``{"n", "u", "v", "w", ["mult"], ["seed"]}``;
  registers (and warm-builds) the graph, returns
  ``{"key", "n", "m", "chain_nbytes"}``.
* ``POST /solve`` — body ``{"key", "b" | ("source", "sink"),
  ["eps"], ["method"]}``; returns the request's scattered column:
  ``{"x", "status", "iterations", "residual_2norm", "method",
  "batched_k", "batch_seq"}``.

Errors come back as ``{"error": msg}`` with 400 (bad request), 404
(unknown route/key), 408 (read timeout), 413 (oversized body), 503
(overloaded — with a ``Retry-After`` header and a ``retry_after``
field in the body), or 500 (unexpected).
"""

from __future__ import annotations

import asyncio
import functools
import json

import numpy as np

from repro.errors import ReproError, ServiceError, ServiceOverloadedError
from repro.pram.executor import _env_cached

__all__ = ["start_http", "http_request",
           "default_serve_read_timeout_s"]

_MAX_BODY = 256 * 1024 * 1024

#: Default per-connection read timeout (seconds).
DEFAULT_READ_TIMEOUT_S = 30.0


def default_serve_read_timeout_s() -> float:
    """Per-connection read timeout from ``REPRO_SERVE_READ_TIMEOUT_S``.

    Bounds how long a connection may take to deliver its request line,
    headers, and body — so an idle or trickling client cannot pin a
    handler task forever.  Response writing and the solve itself are
    not under this timeout.
    """

    def parse(env: str | None) -> float:
        if not env or not env.strip():
            return DEFAULT_READ_TIMEOUT_S
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value <= 0 or not np.isfinite(value):
            raise ValueError(
                f"REPRO_SERVE_READ_TIMEOUT_S must be a positive number "
                f"of seconds, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_READ_TIMEOUT_S", parse)


async def start_http(service, host: str, port: int):
    """``asyncio.start_server`` wrapper binding the request handler."""
    return await asyncio.start_server(
        functools.partial(_handle, service), host, port)


async def _read_request(reader: asyncio.StreamReader):
    """Read one request (line, headers, body); ``None`` on empty close."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, path, _ = request_line.decode("latin1").split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or 0)
    except ValueError:
        raise _HttpError(400, "bad Content-Length")
    if length > _MAX_BODY:
        raise _HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _handle(service, reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    status, payload = 500, {"error": "internal error"}
    retry_after: float | None = None
    try:
        try:
            request = await asyncio.wait_for(
                _read_request(reader),
                timeout=default_serve_read_timeout_s())
        except asyncio.TimeoutError:
            raise _HttpError(
                408, "request not received within the read timeout")
        if request is None:
            writer.close()
            return
        method, path, body = request
        status, payload = await _dispatch(service, method.upper(),
                                          path.strip(), body)
    except _HttpError as exc:
        status, payload = exc.status, {"error": exc.message}
        retry_after = exc.retry_after
        if retry_after is not None:
            payload["retry_after"] = retry_after
    except (asyncio.IncompleteReadError, ConnectionError):
        writer.close()
        return
    except Exception as exc:  # pragma: no cover - defensive
        status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
    data = json.dumps(payload).encode()
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              408: "Request Timeout", 413: "Payload Too Large",
              500: "Internal Server Error",
              503: "Service Unavailable"}.get(status, "Error")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n")
    if retry_after is not None:
        head += f"Retry-After: {max(1, round(retry_after))}\r\n"
    head += "Connection: close\r\n\r\n"
    try:
        writer.write(head.encode("latin1") + data)
        await writer.drain()
    except ConnectionError:  # pragma: no cover - client went away
        pass
    finally:
        writer.close()


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


def _json_body(body: bytes) -> dict:
    if not body:
        raise _HttpError(400, "missing JSON body")
    try:
        obj = json.loads(body.decode())
    except (ValueError, UnicodeDecodeError):
        raise _HttpError(400, "invalid JSON body")
    if not isinstance(obj, dict):
        raise _HttpError(400, "JSON body must be an object")
    return obj


async def _dispatch(service, method: str, path: str,
                    body: bytes) -> tuple[int, dict]:
    if method == "GET" and path == "/healthz":
        return 200, {"ok": True, "graphs": len(service._specs)}
    if method == "GET" and path == "/stats":
        return 200, service.stats()
    if method == "POST" and path == "/graphs":
        return await _post_graph(service, _json_body(body))
    if method == "POST" and path == "/solve":
        return await _post_solve(service, _json_body(body))
    return 404, {"error": f"no route {method} {path}"}


async def _post_graph(service, obj: dict) -> tuple[int, dict]:
    from repro.graphs.multigraph import MultiGraph

    for field in ("n", "u", "v", "w"):
        if field not in obj:
            raise _HttpError(400, f"graph body needs {field!r}")
    try:
        graph = MultiGraph(int(obj["n"]),
                           np.asarray(obj["u"]), np.asarray(obj["v"]),
                           np.asarray(obj["w"], dtype=np.float64),
                           mult=np.asarray(obj["mult"])
                           if obj.get("mult") is not None else None)
    except (ReproError, TypeError, ValueError) as exc:
        raise _HttpError(400, f"bad graph: {exc}")
    seed = obj.get("seed")
    loop = asyncio.get_running_loop()
    try:
        # The warm build is the expensive part — run it off-loop in the
        # solve executor (single-flight via the cache either way).
        key = await loop.run_in_executor(
            service._solve_pool,
            functools.partial(service.register, graph,
                              seed=None if seed is None else int(seed)))
    except ReproError as exc:
        raise _HttpError(400, f"build failed: {exc}")
    solver = service.cache.get(key)
    return 200, {"key": key, "n": graph.n, "m": graph.m,
                 "chain_nbytes": int(solver.chain.nbytes)
                 if solver is not None else None}


async def _post_solve(service, obj: dict) -> tuple[int, dict]:
    key = obj.get("key")
    if not isinstance(key, str):
        raise _HttpError(400, "solve body needs a string 'key'")
    if key not in service._specs:
        raise _HttpError(404, f"unknown graph key {key!r}")
    spec = service._specs[key]
    if obj.get("b") is not None:
        b = np.asarray(obj["b"], dtype=np.float64)
        if b.ndim != 1:
            raise _HttpError(400, "'b' must be a flat array")
    elif "source" in obj and "sink" in obj:
        b = np.zeros(spec.graph.n)
        try:
            b[int(obj["source"])] = 1.0
            b[int(obj["sink"])] += -1.0
        except (IndexError, ValueError):
            raise _HttpError(400, "source/sink out of range")
    else:
        raise _HttpError(400, "solve body needs 'b' or 'source'+'sink'")
    eps = float(obj.get("eps", 1e-6))
    method = obj.get("method", "richardson")
    if method not in ("richardson", "pcg"):
        raise _HttpError(400, f"unknown method {method!r}")
    try:
        result = await service._submit(key, b, eps, method, plan=None)
    except ServiceOverloadedError as exc:
        # Shed load with an explicit retry hint — the one ServiceError
        # subclass that means "nothing wrong with the request".
        raise _HttpError(503, str(exc), retry_after=exc.retry_after)
    except ServiceError as exc:
        raise _HttpError(404, str(exc))
    except ReproError as exc:
        raise _HttpError(400, f"solve failed: {exc}")
    return 200, {"x": result.x.tolist(), "status": result.status,
                 "iterations": result.iterations,
                 "residual_2norm": result.residual_2norm,
                 "method": result.method, "batched_k": result.batched_k,
                 "batch_seq": result.batch_seq}


def http_request(url: str, method: str = "GET", payload: dict | None = None,
                 timeout: float = 60.0) -> tuple[int, dict]:
    """Tiny synchronous JSON client (urllib) for the CLI and tests.

    Returns ``(status_code, decoded_body)``; 4xx/5xx responses are
    returned, not raised, so callers can surface the server's
    ``{"error": ...}`` message.
    """
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode() or "{}")
    except urllib.error.HTTPError as err:
        try:
            body = json.loads(err.read().decode() or "{}")
        except ValueError:
            body = {"error": err.reason}
        return err.code, body
