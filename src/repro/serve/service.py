"""Long-lived solver service: resident chains + micro-batched solves.

:class:`SolverService` is the in-process heart of ``repro serve``
(DESIGN.md §12).  It owns

* a dedicated thread running an asyncio event loop (request plumbing),
* a single-worker solve executor (batched solves and chain builds run
  one at a time, so batch execution order — and therefore the fault
  coordinates of ``stage=serve`` directives — is deterministic),
* a :class:`repro.serve.cache.ChainCache` of resident solvers built
  with ``keep_graphs=False`` (streaming builds: the cache holds the
  solve payload, not the per-level graphs), and
* a :class:`repro.serve.batcher.MicroBatcher` that fuses concurrent
  single-RHS requests into one ``solve_many`` block.

Thread model: callers live anywhere (:meth:`submit` is thread-safe and
returns a ``concurrent.futures.Future``); fault plans are resolved in
the *calling* thread (the same rule the executor's dispatch sites
follow — see :mod:`repro.pram.faults`) and travel with the request, so
a ``use_faults`` block around a submission works even though the solve
happens on the service's thread.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.config import SolverOptions, default_options, reset_env_caches
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, ServiceError
from repro.graphs.multigraph import MultiGraph
from repro.pram.executor import RetryPolicy
from repro.pram.faults import (
    FaultLog,
    InjectedFault,
    active_plan,
    apply_serve_faults,
    split_serve_plan,
    use_faults,
)
from repro.serve.batcher import (
    MicroBatcher,
    ServeResult,
    default_serve_max_batch,
    default_serve_window_ms,
)
from repro.serve.cache import ChainCache
from repro.serve.keys import solver_cache_key

__all__ = ["SolverService", "GraphSpec"]


@dataclass(frozen=True)
class GraphSpec:
    """What it takes to (re)build one registered graph's solver."""

    graph: MultiGraph
    options: SolverOptions
    seed: int | None


class SolverService:
    """Resident-chain, micro-batching front end over the solver.

    Parameters
    ----------
    options:
        Default :class:`SolverOptions` for registered graphs (per-graph
        overrides via :meth:`register`).  ``keep_graphs`` is forced off
        for cache builds — the service holds solve payloads, not
        diagnostics graphs.
    window_ms / max_batch / cache_bytes:
        Explicit knob overrides; ``None`` resolves
        ``REPRO_SERVE_WINDOW_MS`` / ``REPRO_SERVE_MAX_BATCH`` /
        ``REPRO_SERVE_CACHE_BYTES`` lazily.
    """

    def __init__(self, *, options: SolverOptions | None = None,
                 window_ms: float | None = None,
                 max_batch: int | None = None,
                 cache_bytes: int | None = None) -> None:
        self.options = options or default_options()
        self.cache = ChainCache(max_bytes=cache_bytes)
        #: Serve-level fault log: ``stage=serve`` injections, batch
        #: retries/exhaustions, plus every batch report's own events.
        self.fault_log = FaultLog()
        self._window_ms = window_ms
        self._max_batch = max_batch
        self._specs: dict[str, GraphSpec] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._solve_pool: ThreadPoolExecutor | None = None
        self.batcher: MicroBatcher | None = None
        self._http_servers: list = []
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SolverService":
        """Spin up the event loop thread. Idempotent."""
        if self._started:
            return self
        if self._closed:
            raise ServiceError("service was closed; build a new one")
        # A daemon must see the environment it was launched with, not
        # whatever its importing process had already cached.
        reset_env_caches()
        self._solve_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-solve")
        self.batcher = MicroBatcher(
            self._run_batch, self._solve_pool,
            window_ms=self._window_ms, max_batch=self._max_batch)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop",
            daemon=True)
        self._thread.start()
        self._started = True
        return self

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drain, stop the loop, and release every resident chain."""
        if not self._started or self._closed:
            self._closed = True
            self.cache.close()
            return
        self._closed = True
        try:
            fut = asyncio.run_coroutine_threadsafe(
                self._shutdown_async(), self._loop)
            fut.result(timeout=30)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if not self._loop.is_running():
            self._loop.close()
        self._solve_pool.shutdown(wait=True)
        self.cache.close()

    async def _shutdown_async(self) -> None:
        for server in self._http_servers:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._http_servers.clear()
        await self.batcher.shutdown(ServiceError("service closed"))

    def _require_started(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if not self._started:
            raise ServiceError("service not started; call start() or "
                               "use it as a context manager")

    # -- graph registry ------------------------------------------------------

    def register(self, graph: MultiGraph,
                 options: SolverOptions | None = None,
                 seed: int | None = None, warm: bool = True) -> str:
        """Register ``graph`` and return its canonical cache key.

        The spec is retained so an evicted chain can be rebuilt on the
        next request for its key; ``warm=True`` (default) builds the
        chain now (through the cache, so concurrent registrations
        single-flight).
        """
        options = options if options is not None else self.options
        if seed is None:
            seed = options.seed if options.seed is not None else 0
        key = solver_cache_key(graph, options, seed)
        self._specs[key] = GraphSpec(graph, options, int(seed))
        if warm:
            self._resolve_solver(key)
        return key

    def _build(self, spec: GraphSpec) -> LaplacianSolver:
        return LaplacianSolver(
            spec.graph, options=spec.options.with_(keep_graphs=False),
            seed=spec.seed)

    def _resolve_solver(self, key: str) -> LaplacianSolver:
        spec = self._specs.get(key)
        if spec is None:
            raise ServiceError(
                f"unknown graph key {key!r}; register the graph first")
        return self.cache.get_or_build(key, lambda: self._build(spec))

    # -- request path --------------------------------------------------------

    def submit(self, key: str, b: np.ndarray, eps: float = 1e-6,
               method: str = "richardson") -> "Future[ServeResult]":
        """Queue one single-RHS request; thread-safe.

        Returns a ``concurrent.futures.Future`` resolving to this
        request's :class:`ServeResult` once its micro-batch completes.
        The ambient fault plan is captured here, in the calling thread.
        """
        self._require_started()
        b = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
        if b.ndim != 1:
            raise DimensionMismatchError(
                f"service requests are single right-hand sides; "
                f"got shape {b.shape}")
        plan = active_plan()
        return asyncio.run_coroutine_threadsafe(
            self._submit(key, b, float(eps), method, plan), self._loop)

    def solve(self, key: str, b: np.ndarray, eps: float = 1e-6,
              method: str = "richardson",
              timeout: float | None = 120.0) -> ServeResult:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(key, b, eps=eps, method=method).result(
            timeout=timeout)

    async def _submit(self, key: str, b: np.ndarray, eps: float,
                      method: str, plan) -> ServeResult:
        loop = asyncio.get_running_loop()
        solver = self.cache.get(key)
        if solver is None:
            # Build (or wait on the single-flight build) off-loop, in
            # the solve executor: a cold chain must not stall the
            # event loop's request plumbing.
            solver = await loop.run_in_executor(
                self._solve_pool, self._resolve_solver, key)
        if b.shape != (solver.n,):
            raise DimensionMismatchError(
                f"b must have shape ({solver.n},) for this graph, "
                f"got {b.shape}")
        return await self.batcher.submit(key, solver, b, eps, method,
                                         plan=plan)

    def _run_batch(self, solver: LaplacianSolver, B: np.ndarray,
                   eps_col: np.ndarray, method: str, plan,
                   batch_seq: int):
        """Execute one micro-batch (solve-executor thread).

        ``stage=serve`` kill/hang directives fire here, before the
        blocked solve, and are retried under the ambient
        :class:`RetryPolicy` — stateless directives make the replay
        bit-identical.  The remaining plan is installed around the
        solve so in-kernel injection (including rewritten
        ``nan:stage=serve`` directives) behaves exactly as it would
        under a direct ``solve_many``.
        """
        serve_directives, inner_plan = split_serve_plan(plan)
        policy = RetryPolicy.from_env()
        attempt = 0
        while True:
            try:
                if serve_directives:
                    apply_serve_faults(serve_directives, batch=batch_seq,
                                       attempt=attempt,
                                       log=self.fault_log)
                context = use_faults(inner_plan) if plan is not None \
                    else contextlib.nullcontext()
                with context:
                    report = solver.solve_many_report(B, eps=eps_col,
                                                      method=method)
                if report.fault_log is not None:
                    self.fault_log.events.extend(report.fault_log.events)
                return report
            except InjectedFault as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    self.fault_log.record(
                        "exhausted", kind="serve", chunk=batch_seq,
                        attempt=attempt, backend="serve",
                        detail=str(exc))
                    raise
                self.fault_log.record(
                    "retry", chunk=batch_seq, attempt=attempt,
                    backend="serve", detail="re-dispatching batch")
                time.sleep(policy.base_delay * (2 ** (attempt - 1)))

    # -- HTTP front end ------------------------------------------------------

    def serve_http(self, host: str = "127.0.0.1",
                   port: int = 8000) -> tuple[str, int]:
        """Start the stdlib HTTP front end; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port (the returned value is the
        real one).  Runs on the service's event loop; closed with the
        service.
        """
        self._require_started()
        from repro.serve.http import start_http

        fut = asyncio.run_coroutine_threadsafe(
            start_http(self, host, port), self._loop)
        server = fut.result(timeout=30)
        self._http_servers.append(server)
        sock = server.sockets[0].getsockname()
        return sock[0], sock[1]

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Cache, batcher, fault, and knob snapshot (JSON-friendly)."""
        window_ms = self._window_ms if self._window_ms is not None \
            else default_serve_window_ms()
        max_batch = self._max_batch if self._max_batch is not None \
            else default_serve_max_batch()
        return {
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats()
            if self.batcher is not None else {},
            "faults": self.fault_log.summary(),
            "graphs": len(self._specs),
            "knobs": {"window_ms": float(window_ms),
                      "max_batch": int(max_batch),
                      "cache_bytes": int(self.cache.max_bytes)},
        }
