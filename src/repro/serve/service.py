"""Long-lived solver service: resident chains + micro-batched solves.

:class:`SolverService` is the in-process heart of ``repro serve``
(DESIGN.md §12).  It owns

* a dedicated thread running an asyncio event loop (request plumbing),
* a single-worker solve executor (batched solves and chain builds run
  one at a time, so batch execution order — and therefore the fault
  coordinates of ``stage=serve`` directives — is deterministic),
* a :class:`repro.serve.cache.ChainCache` of resident solvers built
  with ``keep_graphs=False`` (streaming builds: the cache holds the
  solve payload, not the per-level graphs), and
* a :class:`repro.serve.batcher.MicroBatcher` that fuses concurrent
  single-RHS requests into one ``solve_many`` block.

Thread model: callers live anywhere (:meth:`submit` is thread-safe and
returns a ``concurrent.futures.Future``); fault plans are resolved in
the *calling* thread (the same rule the executor's dispatch sites
follow — see :mod:`repro.pram.faults`) and travel with the request, so
a ``use_faults`` block around a submission works even though the solve
happens on the service's thread.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.config import SolverOptions, default_options, reset_env_caches
from repro.core.solver import LaplacianSolver
from repro.errors import (
    DimensionMismatchError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graphs.multigraph import MultiGraph
from repro.pram.executor import RetryPolicy, _env_cached
from repro.pram.faults import (
    FaultLog,
    InjectedFault,
    active_plan,
    apply_serve_faults,
    split_serve_plan,
    use_faults,
)
from repro.serve.batcher import (
    MicroBatcher,
    ServeResult,
    default_serve_max_batch,
    default_serve_window_ms,
)
from repro.serve.cache import ChainCache
from repro.serve.keys import solver_cache_key

__all__ = ["SolverService", "GraphSpec", "default_serve_max_pending",
           "default_serve_breaker_fails",
           "default_serve_breaker_cooldown_s"]

_log = logging.getLogger("repro.serve")

#: Default pending-request budget (admission control).
DEFAULT_MAX_PENDING = 256
#: Default consecutive-batch-failure threshold that opens the breaker.
DEFAULT_BREAKER_FAILS = 5
#: Default open-state cooldown before a half-open probe (seconds).
DEFAULT_BREAKER_COOLDOWN_S = 5.0


def default_serve_max_pending() -> int:
    """Pending-request budget from ``REPRO_SERVE_MAX_PENDING`` (≥ 0).

    Requests beyond this many in flight are **shed** with a retriable
    :class:`~repro.errors.ServiceOverloadedError` (HTTP 503 +
    ``Retry-After``) instead of queueing unboundedly.  ``0`` disables
    admission control.
    """

    def parse(env: str | None) -> int:
        if not env or not env.strip():
            return DEFAULT_MAX_PENDING
        try:
            value = int(env)
        except ValueError:
            value = -1
        if value < 0:
            raise ValueError(
                f"REPRO_SERVE_MAX_PENDING must be a non-negative "
                f"integer, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_MAX_PENDING", parse)


def default_serve_breaker_fails() -> int:
    """Consecutive batch failures that open the circuit breaker
    (``REPRO_SERVE_BREAKER_FAILS``, ≥ 1)."""

    def parse(env: str | None) -> int:
        if not env or not env.strip():
            return DEFAULT_BREAKER_FAILS
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"REPRO_SERVE_BREAKER_FAILS must be a positive "
                f"integer, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_BREAKER_FAILS", parse)


def default_serve_breaker_cooldown_s() -> float:
    """Open-state cooldown before the half-open probe
    (``REPRO_SERVE_BREAKER_COOLDOWN_S``, seconds > 0)."""

    def parse(env: str | None) -> float:
        if not env or not env.strip():
            return DEFAULT_BREAKER_COOLDOWN_S
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value <= 0 or not np.isfinite(value):
            raise ValueError(
                f"REPRO_SERVE_BREAKER_COOLDOWN_S must be a positive "
                f"number of seconds, got {env!r}")
        return value

    return _env_cached("REPRO_SERVE_BREAKER_COOLDOWN_S", parse)


class _Breaker:
    """Circuit breaker over the batched-solve path (DESIGN.md §13).

    ``closed`` → normal admission.  After K *consecutive* batch
    failures the breaker **opens**: requests fail fast with
    :class:`~repro.errors.ServiceOverloadedError` instead of queueing
    behind a path that keeps dying.  After the cooldown one **probe**
    request is admitted (``half-open``); its success re-closes the
    breaker, its failure re-opens it for another cooldown.

    A probe admission returns a token the admitting request must hand
    back via :meth:`release_probe` if it dies before reaching the
    batch path (unknown key, bad shape, …) — otherwise the probe slot
    would stay claimed forever and the breaker could never recover.
    The token guards against releasing a *later* request's probe slot.

    Admission runs on the event-loop thread, outcomes land from the
    solve-executor thread — hence the lock.
    """

    def __init__(self, fails: int | None = None,
                 cooldown_s: float | None = None) -> None:
        self._fails = fails
        self._cooldown = cooldown_s
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.opens = 0
        self._opened_at = 0.0
        self._probing = False
        self._probe_token = 0

    def threshold(self) -> int:
        return self._fails if self._fails is not None \
            else default_serve_breaker_fails()

    def cooldown_s(self) -> float:
        return self._cooldown if self._cooldown is not None \
            else default_serve_breaker_cooldown_s()

    def allow(self) -> tuple[bool, int | None]:
        """``(admitted, probe_token)`` — may transition open→half-open.

        ``probe_token`` is non-``None`` iff this admission *is* the
        half-open probe; the caller owes :meth:`release_probe` for it
        if the request fails before the batch path records an outcome.
        """
        with self._lock:
            if self.state == "closed":
                return True, None
            if self.state == "open":
                if time.monotonic() - self._opened_at < self.cooldown_s():
                    return False, None
                self.state = "half-open"
                self._probing = False
            # half-open: admit exactly one probe at a time.
            if self._probing:
                return False, None
            self._probing = True
            self._probe_token += 1
            return True, self._probe_token

    def release_probe(self, token: int) -> None:
        """Free the half-open probe slot if ``token`` still holds it.

        No-op when the probe already reached :meth:`record_success` /
        :meth:`record_failure` (state moved on) or when a later probe
        owns the slot — so callers can release unconditionally from a
        ``finally``.
        """
        with self._lock:
            if self.state == "half-open" and self._probing \
                    and token == self._probe_token:
                self._probing = False

    def retry_after(self) -> float:
        with self._lock:
            remaining = self.cooldown_s() - (time.monotonic()
                                             - self._opened_at)
        return max(0.1, remaining)

    def record_success(self, log: FaultLog | None = None) -> None:
        with self._lock:
            reopened = self.state != "closed"
            self.state = "closed"
            self.consecutive_failures = 0
            self._probing = False
        if reopened:
            _log.info("circuit breaker closed (probe succeeded)")
            if log is not None:
                log.record("breaker_close", backend="serve",
                           detail="half-open probe succeeded")

    def record_failure(self, log: FaultLog | None = None) -> None:
        with self._lock:
            self.consecutive_failures += 1
            was_open = self.state == "open"
            tripped = (self.state == "half-open"
                       or self.consecutive_failures >= self.threshold())
            if tripped:
                self.state = "open"
                self._opened_at = time.monotonic()
                self._probing = False
                if not was_open:
                    self.opens += 1
            count = self.consecutive_failures
        if tripped and not was_open:
            _log.warning("circuit breaker opened after %d consecutive "
                         "batch failures", count)
            if log is not None:
                log.record("breaker_open", backend="serve",
                           detail=f"{count} consecutive batch failures")


@dataclass(frozen=True)
class GraphSpec:
    """What it takes to (re)build one registered graph's solver."""

    graph: MultiGraph
    options: SolverOptions
    seed: int | None


class SolverService:
    """Resident-chain, micro-batching front end over the solver.

    Parameters
    ----------
    options:
        Default :class:`SolverOptions` for registered graphs (per-graph
        overrides via :meth:`register`).  ``keep_graphs`` is forced off
        for cache builds — the service holds solve payloads, not
        diagnostics graphs.
    window_ms / max_batch / cache_bytes / max_pending:
        Explicit knob overrides; ``None`` resolves
        ``REPRO_SERVE_WINDOW_MS`` / ``REPRO_SERVE_MAX_BATCH`` /
        ``REPRO_SERVE_CACHE_BYTES`` / ``REPRO_SERVE_MAX_PENDING``
        lazily.
    breaker_fails / breaker_cooldown_s:
        Circuit-breaker overrides for ``REPRO_SERVE_BREAKER_FAILS`` /
        ``REPRO_SERVE_BREAKER_COOLDOWN_S``.
    """

    def __init__(self, *, options: SolverOptions | None = None,
                 window_ms: float | None = None,
                 max_batch: int | None = None,
                 cache_bytes: int | None = None,
                 max_pending: int | None = None,
                 breaker_fails: int | None = None,
                 breaker_cooldown_s: float | None = None) -> None:
        self.options = options or default_options()
        self.cache = ChainCache(max_bytes=cache_bytes)
        #: Serve-level fault log: ``stage=serve`` injections, batch
        #: retries/exhaustions, plus every batch report's own events.
        self.fault_log = FaultLog()
        self._window_ms = window_ms
        self._max_batch = max_batch
        self._max_pending = max_pending
        #: Requests admitted but not yet resolved (event-loop thread
        #: only — incremented strictly after the admission check, so
        #: the ``REPRO_SERVE_MAX_PENDING`` budget is a hard bound).
        self._pending = 0
        #: Requests refused under admission control.
        self.shed = 0
        self.breaker = _Breaker(breaker_fails, breaker_cooldown_s)
        self._specs: dict[str, GraphSpec] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._solve_pool: ThreadPoolExecutor | None = None
        self.batcher: MicroBatcher | None = None
        self._http_servers: list = []
        self._started = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SolverService":
        """Spin up the event loop thread. Idempotent."""
        if self._started:
            return self
        if self._closed:
            raise ServiceError("service was closed; build a new one")
        # A daemon must see the environment it was launched with, not
        # whatever its importing process had already cached.
        reset_env_caches()
        self._solve_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-solve")
        self.batcher = MicroBatcher(
            self._run_batch, self._solve_pool,
            window_ms=self._window_ms, max_batch=self._max_batch)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-serve-loop",
            daemon=True)
        self._thread.start()
        self._started = True
        return self

    def __enter__(self) -> "SolverService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Drain, stop the loop, and release every resident chain.

        The loop is closed **unconditionally** once its thread is
        joined — the earlier ``if not is_running()`` guard leaked the
        loop (and its selector fd) whenever the thread was slow to
        stop — and drain problems are logged, never swallowed.
        """
        if not self._started or self._closed:
            self._closed = True
            self.cache.close()
            return
        self._closed = True
        try:
            fut = asyncio.run_coroutine_threadsafe(
                self._shutdown_async(), self._loop)
            fut.result(timeout=30)
        except Exception as exc:  # best-effort drain, but say so
            _log.warning("service drain did not complete cleanly: %r",
                         exc)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        if self._thread.is_alive():  # pragma: no cover - wedged loop
            _log.warning("event-loop thread still alive after join "
                         "timeout; closing the loop anyway")
        with contextlib.suppress(Exception):
            self._loop.close()
        self._solve_pool.shutdown(wait=True)
        self.cache.close()

    async def _shutdown_async(self) -> None:
        for server in self._http_servers:
            server.close()
            with contextlib.suppress(Exception):
                await server.wait_closed()
        self._http_servers.clear()
        await self.batcher.shutdown(ServiceError("service closed"))

    def _require_started(self) -> None:
        if self._closed:
            raise ServiceError("service is closed")
        if not self._started:
            raise ServiceError("service not started; call start() or "
                               "use it as a context manager")

    # -- graph registry ------------------------------------------------------

    def register(self, graph: MultiGraph,
                 options: SolverOptions | None = None,
                 seed: int | None = None, warm: bool = True) -> str:
        """Register ``graph`` and return its canonical cache key.

        The spec is retained so an evicted chain can be rebuilt on the
        next request for its key; ``warm=True`` (default) builds the
        chain now (through the cache, so concurrent registrations
        single-flight).
        """
        options = options if options is not None else self.options
        if seed is None:
            seed = options.seed if options.seed is not None else 0
        key = solver_cache_key(graph, options, seed)
        self._specs[key] = GraphSpec(graph, options, int(seed))
        if warm:
            self._resolve_solver(key)
        return key

    def _build(self, spec: GraphSpec) -> LaplacianSolver:
        return LaplacianSolver(
            spec.graph, options=spec.options.with_(keep_graphs=False),
            seed=spec.seed)

    def _resolve_solver(self, key: str) -> LaplacianSolver:
        spec = self._specs.get(key)
        if spec is None:
            raise ServiceError(
                f"unknown graph key {key!r}; register the graph first")
        return self.cache.get_or_build(key, lambda: self._build(spec))

    # -- request path --------------------------------------------------------

    def submit(self, key: str, b: np.ndarray, eps: float = 1e-6,
               method: str = "richardson") -> "Future[ServeResult]":
        """Queue one single-RHS request; thread-safe.

        Returns a ``concurrent.futures.Future`` resolving to this
        request's :class:`ServeResult` once its micro-batch completes.
        The ambient fault plan is captured here, in the calling thread.
        """
        self._require_started()
        b = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
        if b.ndim != 1:
            raise DimensionMismatchError(
                f"service requests are single right-hand sides; "
                f"got shape {b.shape}")
        plan = active_plan()
        return asyncio.run_coroutine_threadsafe(
            self._submit(key, b, float(eps), method, plan), self._loop)

    def solve(self, key: str, b: np.ndarray, eps: float = 1e-6,
              method: str = "richardson",
              timeout: float | None = 120.0) -> ServeResult:
        """Blocking convenience wrapper over :meth:`submit`."""
        return self.submit(key, b, eps=eps, method=method).result(
            timeout=timeout)

    def max_pending(self) -> int:
        """Admission budget (constructor override or env; 0 = off)."""
        if self._max_pending is not None:
            return self._max_pending
        return default_serve_max_pending()

    def _admit(self) -> int | None:
        """Admission control — event-loop thread, before any queueing.

        Raises the retriable :class:`ServiceOverloadedError` when the
        pending-request budget is exhausted or the circuit breaker is
        open; both paths record a ``shed`` event so overload behaviour
        is observable.  Returns the breaker's probe token when this
        request is the half-open probe (``None`` otherwise) — the
        caller must hand it back via ``breaker.release_probe`` once
        the request settles, lest a pre-batch failure (unknown key,
        bad shape) strand the probe slot and wedge the breaker
        half-open forever.
        """
        limit = self.max_pending()
        if limit and self._pending >= limit:
            self.shed += 1
            self.fault_log.record(
                "shed", backend="serve",
                detail=f"pending={self._pending} at max_pending={limit}")
            raise ServiceOverloadedError(
                f"service overloaded: {self._pending} requests pending "
                f"(budget {limit}); retry shortly", retry_after=0.1)
        admitted, probe = self.breaker.allow()
        if not admitted:
            self.shed += 1
            self.fault_log.record(
                "shed", backend="serve",
                detail="circuit breaker open (failing batch path)")
            raise ServiceOverloadedError(
                "service unavailable: circuit breaker open after "
                "repeated batch failures",
                retry_after=self.breaker.retry_after())
        return probe

    async def _submit(self, key: str, b: np.ndarray, eps: float,
                      method: str, plan) -> ServeResult:
        loop = asyncio.get_running_loop()
        probe = self._admit()
        self._pending += 1
        try:
            solver = self.cache.get(key)
            if solver is None:
                # Build (or wait on the single-flight build) off-loop,
                # in the solve executor: a cold chain must not stall
                # the event loop's request plumbing.
                solver = await loop.run_in_executor(
                    self._solve_pool, self._resolve_solver, key)
            if b.shape != (solver.n,):
                raise DimensionMismatchError(
                    f"b must have shape ({solver.n},) for this graph, "
                    f"got {b.shape}")
            return await self.batcher.submit(key, solver, b, eps,
                                             method, plan=plan)
        finally:
            self._pending -= 1
            if probe is not None:
                # No-op when _run_batch already recorded the probe's
                # outcome; frees the slot when the request died before
                # reaching the batch path.
                self.breaker.release_probe(probe)

    def _run_batch(self, solver: LaplacianSolver, B: np.ndarray,
                   eps_col: np.ndarray, method: str, plan,
                   batch_seq: int):
        """Execute one micro-batch (solve-executor thread).

        ``stage=serve`` kill/hang directives fire here, before the
        blocked solve, and are retried under the ambient
        :class:`RetryPolicy` — stateless directives make the replay
        bit-identical.  The remaining plan is installed around the
        solve so in-kernel injection (including rewritten
        ``nan:stage=serve`` directives) behaves exactly as it would
        under a direct ``solve_many``.
        """
        serve_directives, inner_plan = split_serve_plan(plan)
        policy = RetryPolicy.from_env()
        attempt = 0
        while True:
            try:
                if serve_directives:
                    apply_serve_faults(serve_directives, batch=batch_seq,
                                       attempt=attempt,
                                       log=self.fault_log)
                context = use_faults(inner_plan) if plan is not None \
                    else contextlib.nullcontext()
                with context:
                    report = solver.solve_many_report(B, eps=eps_col,
                                                      method=method)
                if report.fault_log is not None:
                    self.fault_log.events.extend(report.fault_log.events)
                # Only the batch's final outcome feeds the breaker —
                # retried transients that eventually succeed are the
                # system working, not a failing dependency.
                self.breaker.record_success(self.fault_log)
                return report
            except InjectedFault as exc:
                attempt += 1
                if attempt >= policy.max_attempts:
                    self.fault_log.record(
                        "exhausted", kind="serve", chunk=batch_seq,
                        attempt=attempt, backend="serve",
                        detail=str(exc))
                    self.breaker.record_failure(self.fault_log)
                    raise
                self.fault_log.record(
                    "retry", chunk=batch_seq, attempt=attempt,
                    backend="serve", detail="re-dispatching batch")
                time.sleep(policy.base_delay * (2 ** (attempt - 1)))
            except BaseException:
                self.breaker.record_failure(self.fault_log)
                raise

    # -- HTTP front end ------------------------------------------------------

    def serve_http(self, host: str = "127.0.0.1",
                   port: int = 8000) -> tuple[str, int]:
        """Start the stdlib HTTP front end; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port (the returned value is the
        real one).  Runs on the service's event loop; closed with the
        service.
        """
        self._require_started()
        from repro.serve.http import start_http

        fut = asyncio.run_coroutine_threadsafe(
            start_http(self, host, port), self._loop)
        server = fut.result(timeout=30)
        self._http_servers.append(server)
        sock = server.sockets[0].getsockname()
        return sock[0], sock[1]

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """Cache, batcher, fault, and knob snapshot (JSON-friendly)."""
        window_ms = self._window_ms if self._window_ms is not None \
            else default_serve_window_ms()
        max_batch = self._max_batch if self._max_batch is not None \
            else default_serve_max_batch()
        return {
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats()
            if self.batcher is not None else {},
            "faults": self.fault_log.summary(),
            "graphs": len(self._specs),
            "admission": {"pending": int(self._pending),
                          "shed": int(self.shed)},
            "breaker": {"state": self.breaker.state,
                        "opens": int(self.breaker.opens),
                        "consecutive_failures":
                            int(self.breaker.consecutive_failures)},
            "knobs": {"window_ms": float(window_ms),
                      "max_batch": int(max_batch),
                      "cache_bytes": int(self.cache.max_bytes),
                      "max_pending": int(self.max_pending()),
                      "breaker_fails": int(self.breaker.threshold()),
                      "breaker_cooldown_s":
                          float(self.breaker.cooldown_s())},
        }
