"""Solver configuration.

The paper leaves every constant unspecified (as theory papers do); this
module centralises them so benchmarks can sweep them and so the default
behaviour is documented in one place.

Two presets mirror the paper's two headline theorems:

* :func:`theorem_1_1_options` — naive edge splitting (Lemma 3.2).
* :func:`theorem_1_2_options` — leverage-score-overestimate splitting
  (Lemma 3.3 with ``K = Θ(log³ n)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

__all__ = [
    "SolverOptions",
    "default_options",
    "theorem_1_1_options",
    "theorem_1_2_options",
    "practical_options",
    "reset_env_caches",
]

SplittingStrategy = Literal["naive", "leverage", "none"]


@dataclass(frozen=True)
class SolverOptions:
    """Tunable constants for :class:`repro.core.solver.LaplacianSolver`.

    Attributes
    ----------
    splitting:
        How the input simple graph is turned into an α-bounded
        multigraph.  ``"naive"`` = Lemma 3.2 (split every edge into
        ``ceil(1/alpha)`` copies), ``"leverage"`` = Lemma 3.3
        (leverage-score overestimates), ``"none"`` = assume the caller
        already supplies an α-bounded multigraph.
    alpha_scale:
        The theory takes ``α⁻¹ = Θ(log² n)``.  We use
        ``α⁻¹ = max(1, round(alpha_scale · log₂² n))``.  ``alpha_scale``
        of 1.0 is the literal theory reading; the default 0.25 keeps
        laptop-scale instances fast while concentration still holds
        empirically (benchmark E14 sweeps this knob).
    min_vertices:
        ``BlockCholesky`` recurses until the Schur complement has at
        most this many vertices (paper: 100), then solves densely.
    dd_fraction / dd_candidate_fraction / dd_threshold:
        Constants of ``5DDSubset`` (Algorithm 3): accept when
        ``|F| > n·dd_fraction`` (paper: 1/40), sample candidate sets of
        size ``n·dd_candidate_fraction`` (paper: 1/20), and keep
        vertices whose weighted degree inside the candidate set is at
        most ``dd_threshold`` times their total weighted degree
        (paper: 1/5 — this is what makes the subset 5-DD).
    jacobi_eps:
        ε for the Jacobi operator inside ``ApplyCholesky``; ``None``
        uses the paper's ``1/(2d)`` where ``d`` is the chain depth.
    richardson_delta:
        δ such that the preconditioner satisfies ``B ≈_δ A⁺``
        (Theorem 3.10 gives δ = 1).
    max_walk_steps:
        Safety cap on a single terminal walk.  Lemma 5.4 gives
        ``O(log m)`` whp; the cap is generous and a
        :class:`repro.errors.SamplingError` is raised when exceeded
        (which would indicate the 5-DD property was violated).
    lev_sample_K:
        ``K`` of Lemma 3.3; ``None`` = ``Θ(log³ n)`` per Theorem 1.2.
    keep_graphs:
        Keep every per-level graph of the block Cholesky chain alive
        for diagnostics (default).  ``False`` streams the factorization
        — each level's graph is dropped once its blocks are extracted,
        cutting the chain's retained memory to the blocks themselves
        (solves and edge-count diagnostics are unaffected; see
        :func:`repro.core.block_cholesky.block_cholesky`).
    workers:
        Worker count for the embarrassingly parallel phases (walker
        stepping, column-blocked solves).  ``None`` (default) consults
        the ``REPRO_WORKERS`` env var / CPU count lazily at every
        dispatch.  Results are bit-identical for a fixed seed
        regardless of this value — see
        :class:`repro.pram.ExecutionContext`'s determinism contract.
    backend:
        Execution backend for those phases: ``"serial"``, ``"thread"``
        (numpy kernels release the GIL), or ``"process"`` (walker
        chunks ship to a process pool through shared memory — true
        multi-core scaling for the Python-bound stepping bookkeeping).
        ``None`` (default) consults the ``REPRO_BACKEND`` env var
        lazily (default ``"thread"``).  Like ``workers``, the backend
        never changes results — fixed seed ⇒ bit-identical graphs,
        solutions, and ledger totals across all three.
    sampler:
        Row sampler for the walker-stepping hot path: ``"alias"``
        (CSR-aligned per-row alias planes — Lemma 2.6's O(1)-per-query
        realisation) or ``"bisect"`` (global cumulative-weight
        bisection, O(log m) per query — the historical realisation).
        ``None`` (default) consults the ``REPRO_SAMPLER`` env var
        lazily (default ``"alias"``).  Determinism contract
        (DESIGN.md §8): fixed seed **and fixed sampler** ⇒ bit-identical
        graphs, solutions, and ledger totals across backends and worker
        counts.  The two samplers map the same RNG stream to different
        transitions, so swapping samplers changes results
        *distributionally* (both are exact walk samplers; outputs agree
        statistically, not bitwise).
    chunk_items / chunk_columns:
        Chunk-policy overrides for the execution context (``None`` =
        library defaults; ``chunk_items`` additionally honours the
        ``REPRO_CHUNK_ITEMS`` env var — see
        :func:`repro.pram.executor.default_chunk_items`).  Chunk layout
        is part of the *result* for a fixed seed (it decides the
        per-chunk RNG streams), so these are solver options, not
        runtime knobs.
    retries / chunk_timeout:
        Fault-tolerance policy for dispatched chunks (DESIGN.md §9):
        ``retries`` extra attempts per lost chunk (``None`` = the
        ``REPRO_RETRIES`` env var, default 2), ``chunk_timeout``
        seconds of *stall* — no chunk completing — before the process
        pool is declared hung and rebuilt (``None`` =
        ``REPRO_CHUNK_TIMEOUT``, default off).  Re-dispatch replays
        the same ``(lo, hi, seed)`` chunk, so recovered runs are
        bit-identical to undisturbed ones.
    degrade:
        Permit backend degradation (process → thread → serial) for
        chunks whose retries are exhausted (``None`` = the
        ``REPRO_DEGRADE`` env var, default off — tests want crashes
        loud; the CLI turns it on).  Degraded re-dispatch replays the
        identical chunks, so results stay bit-identical.
    ship_solves:
        Ship blocked-solve column chunks as self-contained tasks over
        the execution context's process/distributed pool, against a
        once-published shared-memory copy of the Cholesky chain
        (DESIGN.md §10).  ``None`` (default) consults the
        ``REPRO_SHIP_SOLVES`` env var lazily (default off).  Only
        engages on the ``process``/``distributed`` backends with >1
        chunk; fixed seed ⇒ bit-identical solutions and ledger totals
        with or without shipping.
    incremental_csr:
        Maintain the elimination loops' restricted walk CSR
        incrementally across rounds
        (:class:`repro.sampling.IncrementalWalkCSR`).  Extracted views
        are bit-identical to from-scratch rebuilds, so this never
        changes results; ``False`` trades the store's O(m) footprint
        for per-round rebuilds (e.g. for memory-constrained streaming
        factorizations).
    coalesce_emitted:
        Coalesce each elimination round's emitted parallel edges in
        the incremental walk store: same-``{u, v}`` duplicates merge
        within the batch (weight-sum, multiplicity-sum) and fold into
        previously coalesced live slots, so heavy rows hold one slot
        per neighbour instead of one per walker (DESIGN.md §11).
        ``None`` (default) consults the ``REPRO_COALESCE`` env var
        lazily (default off).  The stored graph's Laplacian is
        preserved exactly and α-boundedness is maintained; walks
        through the coalesced store differ *distributionally* from the
        uncoalesced realisation (fixed seed + fixed coalesce setting ⇒
        bit-identical graphs, solutions, and ledger totals across
        backends, worker counts, and per sampler).  Requires
        ``incremental_csr``; legacy baselines are structurally pinned
        off.
    seed:
        Default seed threaded to all stochastic routines.
    """

    splitting: SplittingStrategy = "naive"
    alpha_scale: float = 0.25
    min_vertices: int = 100
    dd_fraction: float = 1.0 / 40.0
    dd_candidate_fraction: float = 1.0 / 20.0
    dd_threshold: float = 1.0 / 5.0
    jacobi_eps: float | None = None
    richardson_delta: float = 1.0
    max_walk_steps: int = 10_000
    lev_sample_K: int | None = None
    keep_graphs: bool = True
    workers: int | None = None
    backend: str | None = None
    sampler: str | None = None
    chunk_items: int | None = None
    chunk_columns: int | None = None
    retries: int | None = None
    chunk_timeout: float | None = None
    degrade: bool | None = None
    ship_solves: bool | None = None
    incremental_csr: bool = True
    coalesce_emitted: bool | None = None
    seed: int | None = None
    track_costs: bool = True

    def alpha_inverse(self, n: int) -> int:
        """α⁻¹ = Θ(log² n) rounded to an integer ≥ 1 (see Theorem 3.9)."""
        if n < 2:
            return 1
        log2n = math.log2(max(n, 2))
        return max(1, int(round(self.alpha_scale * log2n * log2n)))

    def alpha(self, n: int) -> float:
        """The leverage-score bound α used for multi-edge splitting."""
        return 1.0 / self.alpha_inverse(n)

    def K(self, n: int) -> int:
        """``K = Θ(log³ n)`` of Theorem 1.2 unless overridden."""
        if self.lev_sample_K is not None:
            return self.lev_sample_K
        log2n = math.log2(max(n, 2))
        return max(1, int(round(log2n**3 / 8.0)))

    def with_(self, **kwargs) -> "SolverOptions":
        """Functional update (``dataclasses.replace`` wrapper)."""
        return replace(self, **kwargs)

    def resolve_sampler(self) -> str:
        """The row-sampler name to use *right now* (lazy env lookup)."""
        if self.sampler is not None:
            from repro.sampling.walks import SAMPLERS

            if self.sampler not in SAMPLERS:
                raise ValueError(
                    f"sampler must be None or one of {SAMPLERS}, "
                    f"got {self.sampler!r}")
            return self.sampler
        from repro.sampling.walks import default_sampler

        return default_sampler()

    def resolve_ship_solves(self) -> bool:
        """Whether blocked solves ship *right now* (lazy env lookup)."""
        if self.ship_solves is not None:
            return self.ship_solves
        from repro.pram.executor import default_ship_solves

        return default_ship_solves()

    def resolve_coalesce(self) -> bool:
        """Whether emitted edges coalesce *right now* (lazy env
        lookup)."""
        if self.coalesce_emitted is not None:
            return self.coalesce_emitted
        from repro.pram.executor import default_coalesce

        return default_coalesce()

    def execution(self) -> "ExecutionContext":
        """The :class:`repro.pram.ExecutionContext` these options imply."""
        from repro.pram.executor import (
            ExecutionContext,
            RetryPolicy,
            default_chunk_timeout,
            default_retries,
        )

        kwargs = {}
        if self.chunk_items is not None:
            kwargs["chunk_items"] = self.chunk_items
        if self.chunk_columns is not None:
            kwargs["chunk_columns"] = self.chunk_columns
        if self.retries is not None or self.chunk_timeout is not None:
            retries = self.retries if self.retries is not None \
                else default_retries()
            timeout = self.chunk_timeout \
                if self.chunk_timeout is not None \
                else default_chunk_timeout()
            kwargs["retry"] = RetryPolicy(max_attempts=1 + retries,
                                          timeout=timeout)
        if self.degrade is not None:
            kwargs["degrade"] = self.degrade
        if not kwargs and self.workers is None and self.backend is None:
            return ExecutionContext.DEFAULT
        return ExecutionContext(workers=self.workers,
                                backend=self.backend, **kwargs)


def reset_env_caches() -> None:
    """Forget every cached ``REPRO_*`` environment lookup.

    The env-var knobs (``REPRO_WORKERS``, ``REPRO_BACKEND``,
    ``REPRO_SAMPLER``, ``REPRO_CHUNK_ITEMS``, ``REPRO_FAULTS``, the
    ``REPRO_SERVE_*`` family, ...) all funnel through one module-level
    cache (:func:`repro.pram.executor._env_cached`), keyed on the raw
    env string.  A *changed* value is therefore picked up automatically,
    but a long-lived process wants a hard reset point: stale parse
    results that leaked in from an importing process (or from a test
    poking the cache directly) must not survive into a serving daemon's
    lifetime.  The serve front end calls this on startup
    (:meth:`repro.serve.SolverService.start`) and the test suite calls
    it in teardown (autouse fixture in ``tests/conftest.py``), so no
    test can leak a cached knob into the next.
    """
    from repro.pram.executor import _env_caches

    _env_caches.clear()


def default_options() -> SolverOptions:
    """Practical defaults: naive splitting with a small α-scale."""
    return SolverOptions()


def theorem_1_1_options() -> SolverOptions:
    """Literal Theorem 1.1 configuration (naive Lemma 3.2 splitting)."""
    return SolverOptions(splitting="naive", alpha_scale=1.0)


def theorem_1_2_options() -> SolverOptions:
    """Theorem 1.2 configuration (Lemma 3.3 leverage-score splitting)."""
    return SolverOptions(splitting="leverage", alpha_scale=1.0)


def practical_options(seed: int | None = None) -> SolverOptions:
    """Fast settings for interactive use: minimal splitting.

    With ``alpha_scale`` small the multigraph blow-up is tiny; matrix
    concentration degrades gracefully and preconditioned Richardson
    (with its divergence guard + PCG fallback) absorbs the slack in a
    few extra iterations.
    """
    return SolverOptions(splitting="naive", alpha_scale=0.1, seed=seed)
