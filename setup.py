"""Legacy shim so ``pip install -e .`` works without the ``wheel`` package.

Configuration lives in ``pyproject.toml``; this file intentionally adds
nothing beyond invoking setuptools.
"""

from setuptools import setup

setup()
