"""P1 — hot-path perf: implicit α-split vs the seed's materialised path.

Measures end-to-end ``approx_schur`` (the deepest consumer of the
splitting + walk stack) on a ~n-vertex grid, comparing the implicit
multiplicity representation (default) against ``legacy=True`` — a
faithful re-run of the seed hot path: materialised ``⌈1/α⌉``-copy
split, full CSR rebuild per round, one walker per stored edge,
uncompacted stepping.

Reported per mode:

* wall-clock seconds (best of ``--repeats``),
* peak edge-array bytes: max over rounds of working-graph arrays +
  either the 5-DD induced-subgraph arrays or the walk-phase CSR +
  walker state + emitted arrays (see DESIGN.md §4),
* rounds, walkers launched, logical/stored edge counts.

Acceptance targets (PR 1): ≥ 5× peak-memory reduction and ≥ 2×
speedup at n≈2000, ε=0.5.  Results land in ``BENCH_hotpath.json`` at
the repo root (override with ``--output``).

Usage::

    PYTHONPATH=src python benchmarks/bench_p01_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_p01_hotpath.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.schur import approx_schur, schur_alpha_inverse
from repro.graphs import generators as G

REPO_ROOT = Path(__file__).resolve().parent.parent

# Full-run acceptance thresholds (ISSUE 1); the smoke run uses relaxed
# ones because the asymptotic gap shrinks with n.
FULL_MEM_RATIO = 5.0
FULL_SPEEDUP = 2.0
SMOKE_MEM_RATIO = 2.0
SMOKE_SPEEDUP = 1.2


def make_workload(n_target: int, seed: int):
    side = max(4, int(round(math.sqrt(n_target))))
    g = G.grid2d(side, side)
    rng = np.random.default_rng(seed)
    C = np.sort(rng.choice(g.n, size=max(4, g.n // 3), replace=False))
    return g, C


def run_mode(g, C, eps: float, seed: int, legacy: bool, repeats: int):
    best = None
    report = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        # incremental=False: this benchmark isolates the PR-1 claim
        # (implicit vs materialised *representation*); the PR-3
        # incremental-CSR store has its own footprint and is measured
        # separately in bench_p03_parallel.py.
        report = approx_schur(g, C, eps=eps, seed=seed,
                              return_report=True, legacy=legacy,
                              incremental=False)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return {
        "seconds": best,
        "peak_edge_bytes": int(report.peak_edge_bytes),
        "rounds": int(report.rounds),
        "total_walkers": int(report.total_walkers),
        "logical_edges_initial": int(report.edges_per_round[0]),
        "logical_edges_final": int(report.edges_per_round[-1]),
        "stored_edges_initial": int(report.stored_edges_per_round[0]),
        "stored_edges_final": int(report.stored_edges_per_round[-1]),
        "stored_edges_max": int(max(report.stored_edges_per_round)),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000,
                    help="target vertex count (default 2000)")
    ap.add_argument("--eps", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=2,
                    help="timing repetitions per mode (best is kept)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: n=400, one repeat, relaxed "
                         "thresholds")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_hotpath.json")
    args = ap.parse_args(argv)

    args.repeats = max(1, args.repeats)
    if args.smoke:
        args.n = min(args.n, 400)
        args.repeats = 1
    mem_target = SMOKE_MEM_RATIO if args.smoke else FULL_MEM_RATIO
    speed_target = SMOKE_SPEEDUP if args.smoke else FULL_SPEEDUP

    g, C = make_workload(args.n, args.seed)
    alpha_inv = schur_alpha_inverse(g.n, args.eps)
    print(f"workload: grid n={g.n} m={g.m} |C|={C.size} "
          f"eps={args.eps} alpha_inv={alpha_inv}")

    implicit = run_mode(g, C, args.eps, args.seed, legacy=False,
                        repeats=args.repeats)
    legacy = run_mode(g, C, args.eps, args.seed, legacy=True,
                      repeats=args.repeats)

    speedup = legacy["seconds"] / implicit["seconds"]
    mem_ratio = legacy["peak_edge_bytes"] / implicit["peak_edge_bytes"]
    # Smoke (CI) gates only the memory ratio: byte accounting is
    # deterministic given the seed, while single-repeat wall-clock on a
    # shared runner is not.  The full run enforces both targets.
    ok = mem_ratio >= mem_target and (args.smoke
                                      or speedup >= speed_target)

    result = {
        "benchmark": "p01_hotpath",
        "mode": "smoke" if args.smoke else "full",
        "workload": {"kind": "grid2d", "n": g.n, "m": g.m,
                     "C_size": int(C.size), "eps": args.eps,
                     "alpha_inverse": alpha_inv, "seed": args.seed},
        "implicit": implicit,
        "legacy": legacy,
        "speedup": speedup,
        "peak_memory_ratio": mem_ratio,
        "targets": {"speedup": speed_target, "memory_ratio": mem_target},
        "pass": ok,
        "platform": {"python": platform.python_version(),
                     "numpy": np.__version__,
                     "machine": platform.machine()},
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"implicit: {implicit['seconds']:.3f}s  "
          f"peak {implicit['peak_edge_bytes'] / 1e6:.1f} MB  "
          f"({implicit['rounds']} rounds, "
          f"{implicit['total_walkers']} walkers)")
    print(f"legacy:   {legacy['seconds']:.3f}s  "
          f"peak {legacy['peak_edge_bytes'] / 1e6:.1f} MB  "
          f"({legacy['rounds']} rounds, "
          f"{legacy['total_walkers']} walkers)")
    speed_note = "informational in smoke" if args.smoke \
        else f"target >= {speed_target}x"
    print(f"speedup: {speedup:.2f}x ({speed_note})   "
          f"peak-memory reduction: {mem_ratio:.2f}x "
          f"(target >= {mem_target}x)")
    print(f"{'PASS' if ok else 'FAIL'} -> {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
