"""P7 — shippable blocked-solve tasks over a shared-memory chain payload.

Measures the PR-7 tentpole on an n≈2025 grid: the blocked column
solves (preconditioned Richardson through the solver) ship as pure
``(column slice, tolerances, seed key)`` tasks to the process /
distributed pools, reconstructing view-only chain operators from a
**once-published** shared-memory payload instead of dispatching
closures onto the thread pool.

* **Shipped-matrix invariance (always gated)** — ``solve_many`` must
  produce **bit-identical** solutions and ledger work/depth totals for
  every backend ∈ {serial, thread, process, distributed} ×
  workers ∈ {1, 2, 4} with shipping on, all equal to the serial
  unshipped baseline (DESIGN.md §10: the shipped chunks replay the
  threaded chunk layout exactly).
* **Fault invariance (always gated)** — a ``kill:chunk=1:stage=solve``
  plan (a worker dying mid-solve while attached to the chain payload)
  must recover bit-identically through the standard re-dispatch
  machinery.
* **Shared-memory hygiene (always gated)** — after every run,
  including the faulted one, the parent's segment registry is empty
  and ``/dev/shm`` holds nothing with this process's payload prefix.

Acceptance target (ISSUE 7): ≥ 1.5× solve-phase speedup with the
process backend at 4 workers (shipped) vs the serial backend.  The
speedup gate is enforced in the full run only when the host has ≥ 4
CPUs; on smaller hosts the measured ratios are recorded with
``"gate": "skipped (...)"`` so CI on multi-core runners still
enforces it.  The invariance and hygiene gates always run.  Results
land in ``BENCH_shipped.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p07_shipped.py           # full
    PYTHONPATH=src python benchmarks/bench_p07_shipped.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import practical_options
from repro.core.solver import LaplacianSolver
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import BACKENDS, live_segment_names
from repro.pram.faults import use_faults

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 1.5           # 4-worker shipped-vs-serial target (≥ 4 CPUs)
WORKERS = (1, 2, 4)
SEED = 1234
EPS = 1e-8

#: Right-hand-side count and column-chunk grain: k / chunk_columns
#: chunks per dispatch, so even the smoke run fans out several shipped
#: tasks per kernel call.  The chunk policy is part of the result ⇒
#: held fixed across the whole matrix.
K_RHS = 16
CHUNK_COLUMNS = 4


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    return G.grid2d(side, side)


def timed(fn, repeats: int):
    best, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def shm_leaks() -> tuple[list, list]:
    registry = list(live_segment_names())
    prefix = f"repro-{os.getpid()}-"
    fs = []
    if os.path.isdir("/dev/shm"):
        fs = [name for name in os.listdir("/dev/shm")
              if name.startswith(prefix)]
    return registry, fs


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: gates invariance/hygiene, "
                         "reports timing without enforcing speedups")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (400 if args.smoke
                                                  else 2025)
    repeats = args.repeats if args.repeats is not None \
        else (1 if args.smoke else 3)
    cpus = os.cpu_count() or 1

    g = make_workload(n_target)
    rng = np.random.default_rng(SEED)
    B = rng.standard_normal((g.n, K_RHS))
    B -= B.mean(axis=0)
    base_opts = practical_options().with_(chunk_columns=CHUNK_COLUMNS,
                                          chunk_items=4096)
    print(f"workload: grid n={g.n} m={g.m} k={K_RHS} eps={EPS} "
          f"cpus={cpus} repeats={repeats} "
          f"chunk_columns={CHUNK_COLUMNS}")

    def run(backend: str, workers: int, ship: bool, plan=None):
        opts = base_opts.with_(backend=backend, workers=workers,
                               ship_solves=ship)
        solver = LaplacianSolver(g, options=opts, seed=SEED)
        with use_faults(plan):
            t, x = timed(lambda: solver.solve_many(B, eps=EPS),
                         repeats)
            with use_ledger() as ledger:
                check = solver.solve_many(B, eps=EPS)
        payload_mb = solver.shipment.nbytes / 1e6
        solver.close()
        return t, x, check, (ledger.work, ledger.depth), payload_mb

    # -- baseline: serial, unshipped -----------------------------------------
    t_serial, base_x, base_check, base_totals, payload_mb = run(
        "serial", 1, False)
    identical = bool(np.array_equal(base_x, base_check))
    print(f"solve backend=serial workers=1 shipped=False: "
          f"{t_serial:.3f}s  (chain payload {payload_mb:.2f} MB)")

    # -- shipped matrix: timings + bit-identical solutions + ledgers ---------
    times: dict[str, dict[str, float]] = {b: {} for b in BACKENDS}
    times["serial"]["1"] = t_serial
    ledger_ok = True
    for backend in BACKENDS:
        for w in WORKERS:
            if backend == "serial" and w == 1:
                continue
            t, x, check, totals, _ = run(backend, w, True)
            times[backend][str(w)] = t
            if not (np.array_equal(x, base_x)
                    and np.array_equal(check, base_x)):
                identical = False
            if totals != base_totals:
                ledger_ok = False
            print(f"solve backend={backend} workers={w} shipped=True: "
                  f"{t:.3f}s")
    print(f"shipped-matrix invariance (bit-identical solutions): "
          f"{identical}")
    if not identical:
        print("FAIL: solve_many output depends on backend/workers/"
              "shipping", file=sys.stderr)
        return 1
    print(f"ledger work/depth invariance: {ledger_ok}")
    if not ledger_ok:
        print("FAIL: ledger totals vary across the shipped matrix",
              file=sys.stderr)
        return 1

    # -- fault invariance: worker killed mid-solve ---------------------------
    _, fx, fcheck, ftotals, _ = run("process", 2, True,
                                    plan="kill:chunk=1:stage=solve")
    faulted_ok = bool(np.array_equal(fx, base_x)
                      and np.array_equal(fcheck, base_x)
                      and ftotals == base_totals)
    print(f"faulted-run invariance (kill:chunk=1:stage=solve): "
          f"{faulted_ok}")
    if not faulted_ok:
        print("FAIL: faulted shipped run differs from the baseline",
              file=sys.stderr)
        return 1

    # -- shared-memory hygiene (after every run, faulted included) ----------
    leaked_registry, leaked_fs = shm_leaks()
    hygiene_ok = not leaked_registry and not leaked_fs
    print(f"shared-memory hygiene (no leaked segments): {hygiene_ok}")
    if not hygiene_ok:
        print(f"FAIL: leaked segments registry={leaked_registry} "
              f"fs={leaked_fs}", file=sys.stderr)
        return 1

    speedup_proc = t_serial / times["process"]["4"]
    speedup_dist = t_serial / times["distributed"]["4"]

    # -- gates ----------------------------------------------------------------
    if args.smoke or cpus < 4:
        gate = f"skipped ({'smoke' if args.smoke else f'cpus={cpus} < 4'})"
        ok = True
    else:
        gate = f"enforced (>= {FULL_SPEEDUP}x process@4 shipped " \
               f"vs serial@1)"
        ok = speedup_proc >= FULL_SPEEDUP
        if not ok:
            print(f"FAIL: shipped-solve speedup {speedup_proc:.2f}x < "
                  f"{FULL_SPEEDUP}x at 4 workers", file=sys.stderr)

    result = {
        "bench": "p07_shipped",
        "workload": {"n": g.n, "m": g.m, "k": K_RHS, "eps": EPS,
                     "seed": SEED, "chunk_columns": CHUNK_COLUMNS},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "chain_payload_mb": payload_mb,
        "solve_seconds": times,
        "process_speedup_4v_serial": speedup_proc,
        "distributed_speedup_4v_serial": speedup_dist,
        "shipped_matrix_bit_identical": identical,
        "ledger_totals_invariant": ledger_ok,
        "faulted_run_bit_identical": faulted_ok,
        "shared_memory_clean": hygiene_ok,
        "speedup_gate": gate,
    }
    out_path = REPO_ROOT / "BENCH_shipped.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
