"""P8 — coalescing emitted parallel edges in the incremental walk store.

Each elimination round's terminal walks emit many *parallel* edges
(same endpoint pair, multiplicity 1 each).  The PR-8 coalescing path
merges them at insert time — packed-key ``np.unique`` per batch plus
folding into live slots — so the store holds one weighted group per
pair (weight ``Σwᵢ``, multiplicity ``k``).  The Laplacian is unchanged
(per-copy resistance ``k/Σwᵢ`` is the conditional mean of the
individual resistances, so Lemma 5.1's unbiasedness survives with
*smaller* variance); what shrinks is everything proportional to stored
slots: edge bytes, alias-plane rebuild work, epoch-compaction traffic.

Always-on correctness gates:

* **lockstep Laplacian equality** — a raw store and a coalescing store
  fed identical emission batches agree on ``live_graph().coalesced()``
  after every round: structure and logical edge counts exactly,
  weights to float-association tolerance (1e-12 rtol; bitwise when a
  pair's copies all land in one batch — see DESIGN.md §11);
* **determinism matrix** — coalesce ON, fixed seed ⇒ bit-identical
  ``approx_schur`` and ledger totals across ``{serial, thread,
  process, distributed}`` × ``{1, 2, 4}`` workers × ``{alias,
  bisect}`` samplers, no leaked shared memory;
* **incremental-vs-scratch** — with the flag pinned OFF the maintained
  store still reproduces the from-scratch rebuild bit-for-bit (the
  PR-6/7 contract is untouched).

Measured at the p01 workload (grid n≈2025, ε=0.5), coalesce ON vs OFF:

* **stored edges per round** (sum), **peak edge bytes**, and
  **alias slots rebuilt** after the prime — the full run **gates**
  every reduction ``> 1×`` (they are typically ≥ 5×);
* **end-to-end** ``approx_schur`` alias+coalesce vs the bisect
  no-coalesce baseline — the full run **gates ≥ 1.2×**.

Scale probe (full mode): a preferential-attachment power-law graph at
``n = 10⁵`` (``--scale-n``), coalesce ON vs OFF, recording wall-clock,
``peak_edge_bytes``, and per-phase peak RSS — the regime where the
uncoalesced store's accumulated parallels dominate memory.

Results land in ``BENCH_coalesce.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p08_coalesce.py           # full
    PYTHONPATH=src python benchmarks/bench_p08_coalesce.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import default_options
from repro.core.boundedness import naive_split
from repro.core.schur import approx_schur, schur_alpha_inverse
from repro.core.terminal_walks import terminal_walks
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import BACKENDS, live_segment_names
from repro.sampling.inc_csr import IncrementalWalkCSR
from repro.sampling.walks import SAMPLERS

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 1.2
ULP_RTOL = 1e-12


def peak_rss_bytes() -> int:
    """Lifetime peak RSS of this process (monotone; Linux: KiB)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def make_workload(n_target: int, seed: int):
    """The p01 workload: a ~n-vertex grid with |C| = n/3 terminals."""
    side = max(4, int(round(math.sqrt(n_target))))
    g = G.grid2d(side, side)
    rng = np.random.default_rng(seed)
    C = np.sort(rng.choice(g.n, size=max(4, g.n // 3), replace=False))
    return g, C


def lockstep_gate(seed: int) -> dict:
    """Raw vs coalescing store on identical emission batches: same
    Laplacian after every round (structure exact, weights to ulps)."""
    g = naive_split(G.grid2d(11, 11), 0.25)
    raw = IncrementalWalkCSR(g)
    co = IncrementalWalkCSR(g)
    rng = np.random.default_rng(seed)
    work = g
    remaining = np.arange(g.n)
    rounds = 0
    ok = True
    max_rel = 0.0
    for _ in range(5):
        if remaining.size <= 4:
            break
        F = np.unique(rng.choice(remaining,
                                 size=max(1, remaining.size // 5),
                                 replace=False))
        terminals = np.setdiff1d(remaining, F)
        nxt, stats = terminal_walks(work, terminals, seed=rng,
                                    return_stats=True)
        p = stats.passthrough_stored
        mult = None if nxt.mult is None else nxt.mult[p:]
        raw.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:], mult)
        co.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:], mult,
                   coalesce=True)
        ca = raw.live_graph().coalesced()
        cb = co.live_graph().coalesced()
        same = (np.array_equal(ca.u, cb.u) and np.array_equal(ca.v, cb.v)
                and np.allclose(ca.w, cb.w, rtol=ULP_RTOL, atol=0.0)
                and ca.m_logical == cb.m_logical)
        if same and ca.m:
            max_rel = max(max_rel, float(np.max(
                np.abs(ca.w - cb.w) / np.abs(ca.w))))
        ok = ok and same
        work = nxt
        remaining = terminals
        rounds += 1
    return {"ok": bool(ok and rounds >= 3), "rounds": rounds,
            "max_weight_rel_err": max_rel,
            "emitted_slots_saved": int(co.emitted_slots_saved)}


def determinism_gate(seed: int) -> dict:
    """Coalesce ON: bit-identical approx_schur + ledger totals across
    the full backend × worker × sampler matrix."""
    g = G.grid2d(14, 14)
    C = np.arange(0, g.n, 3)
    out: dict = {}
    saved = {k: os.environ.get(k) for k in ("REPRO_BACKEND",
                                            "REPRO_WORKERS")}
    try:
        for kind in SAMPLERS:
            opts = default_options().with_(chunk_items=512, sampler=kind,
                                           coalesce_emitted=True)
            base = None
            ok = True
            for backend in BACKENDS:
                for workers in (1, 2, 4):
                    os.environ["REPRO_BACKEND"] = backend
                    os.environ["REPRO_WORKERS"] = str(workers)
                    with use_ledger() as ledger:
                        got = approx_schur(g, C, eps=0.5, seed=seed,
                                           options=opts)
                    run = (got, ledger.work, ledger.depth)
                    if base is None:
                        base = run
                    elif run[0] != base[0] or run[1:] != base[1:]:
                        ok = False
            out[kind] = ok
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    out["shm_clean"] = live_segment_names() == ()
    return out


def incremental_gate(seed: int) -> dict:
    """Flag pinned OFF: the maintained store still == scratch."""
    g = G.grid2d(13, 13)
    C = np.arange(0, g.n, 4)
    out = {}
    for kind in SAMPLERS:
        opts = default_options().with_(sampler=kind,
                                       coalesce_emitted=False)
        a = approx_schur(g, C, eps=0.5, seed=seed, options=opts,
                         incremental=True)
        b = approx_schur(g, C, eps=0.5, seed=seed, options=opts,
                         incremental=False)
        out[kind] = a == b
    return out


def reduction_metrics(g, C, eps: float, seed: int) -> dict:
    """Store metrics at p01, coalesce OFF vs ON (alias sampler)."""
    out: dict = {}
    for label, flag in (("off", False), ("on", True)):
        opts = default_options().with_(sampler="alias",
                                       coalesce_emitted=flag)
        report = approx_schur(g, C, eps=eps, seed=seed, options=opts,
                              return_report=True)
        out[label] = {
            "stored_edges_total": int(sum(report.stored_edges_per_round)),
            "peak_edge_bytes": int(report.peak_edge_bytes),
            "alias_rebuilt_slots": int(report.alias_rebuilt_slots),
            "emitted_slots_saved": int(report.emitted_slots_saved),
            "rounds": int(report.rounds),
        }
    out["reductions"] = {
        key: (out["off"][key] / out["on"][key]) if out["on"][key] else
        float("inf")
        for key in ("stored_edges_total", "peak_edge_bytes",
                    "alias_rebuilt_slots")}
    return out


def end_to_end(g, C, eps: float, seed: int, repeats: int) -> dict:
    """approx_schur wall-clock: alias+coalesce vs bisect baseline."""
    modes = {
        "bisect_baseline": default_options().with_(
            sampler="bisect", coalesce_emitted=False),
        "alias_coalesce": default_options().with_(
            sampler="alias", coalesce_emitted=True),
    }
    out: dict = {}
    # Interleave the repeats so neither mode systematically runs with
    # colder caches or under different transient load.
    best: dict = {name: None for name in modes}
    reports: dict = {}
    for _ in range(repeats):
        for name, opts in modes.items():
            t0 = time.perf_counter()
            reports[name] = approx_schur(g, C, eps=eps, seed=seed,
                                         options=opts, return_report=True)
            elapsed = time.perf_counter() - t0
            best[name] = elapsed if best[name] is None \
                else min(best[name], elapsed)
    for name in modes:
        out[name] = {"seconds": best[name],
                     "rounds": int(reports[name].rounds),
                     "total_walkers": int(reports[name].total_walkers)}
    out["speedup"] = (out["bisect_baseline"]["seconds"]
                      / out["alias_coalesce"]["seconds"])
    return out


def scale_probe(n: int, seed: int) -> dict:
    """Power-law scale run: approx_schur, coalesce OFF vs ON.

    ``preferential_attachment`` concentrates degree on early hubs, so
    walks revisit the same terminal pairs and the uncoalesced store
    accumulates parallels — the regime the coalescing path targets.
    ``split=False``: at this scale the α-split's multiplicities stay
    implicit and the probe isolates store behaviour, not splitting.
    ru_maxrss is a lifetime high-water mark, so the OFF phase runs
    first — its reading is uninflated; ON's is an upper bound.
    """
    g = G.preferential_attachment(n, 3, seed=seed)
    rng = np.random.default_rng(seed)
    C = np.sort(rng.choice(g.n, size=max(4, g.n // 3), replace=False))
    out: dict = {"n": int(g.n), "m": int(g.m), "C_size": int(C.size)}
    for label, flag in (("off", False), ("on", True)):
        opts = default_options().with_(sampler="alias",
                                       coalesce_emitted=flag)
        rss0 = peak_rss_bytes()
        t0 = time.perf_counter()
        report = approx_schur(g, C, eps=0.5, seed=seed, options=opts,
                              return_report=True)
        out[label] = {
            "seconds": time.perf_counter() - t0,
            "peak_edge_bytes": int(report.peak_edge_bytes),
            "stored_edges_total": int(sum(report.stored_edges_per_round)),
            "rounds": int(report.rounds),
            "rss_before_bytes": rss0,
            "rss_after_bytes": peak_rss_bytes(),
        }
    out["peak_edge_bytes_reduction"] = (
        out["off"]["peak_edge_bytes"] / out["on"]["peak_edge_bytes"]
        if out["on"]["peak_edge_bytes"] else float("inf"))
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2025,
                    help="target vertex count for p01 (default 2025)")
    ap.add_argument("--eps", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repetitions per mode (best is kept)")
    ap.add_argument("--scale-n", type=int, default=100_000,
                    help="scale-probe vertex count (default 1e5)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: n=400, scale probe n=3000, one "
                         "repeat, wall-clock and reduction gates "
                         "informational")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_coalesce.json")
    args = ap.parse_args(argv)

    args.repeats = max(1, args.repeats)
    if args.smoke:
        args.n = min(args.n, 400)
        args.scale_n = min(args.scale_n, 3000)
        args.repeats = 1

    print(f"cpu_count={os.cpu_count()}")
    g, C = make_workload(args.n, args.seed)
    alpha_inv = schur_alpha_inverse(g.n, args.eps)
    print(f"workload: grid n={g.n} m={g.m} |C|={C.size} "
          f"eps={args.eps} alpha_inv={alpha_inv}")

    lockstep = lockstep_gate(args.seed)
    determinism = determinism_gate(args.seed)
    incremental = incremental_gate(args.seed)
    reductions = reduction_metrics(g, C, args.eps, args.seed)
    e2e = end_to_end(g, C, args.eps, args.seed, args.repeats)
    scale = scale_probe(args.scale_n, args.seed)

    gates_ok = (lockstep["ok"]
                and all(determinism[k] for k in SAMPLERS)
                and determinism["shm_clean"]
                and all(incremental[k] for k in SAMPLERS))
    # Wall-clock and reduction ratios are gated on the full run only —
    # same convention as the p05 smoke.
    reductions_ok = args.smoke or all(
        r > 1.0 for r in reductions["reductions"].values())
    speed_ok = args.smoke or e2e["speedup"] >= FULL_SPEEDUP
    ok = gates_ok and reductions_ok and speed_ok

    result = {
        "benchmark": "p08_coalesce",
        "mode": "smoke" if args.smoke else "full",
        "workload": {"kind": "grid2d", "n": g.n, "m": g.m,
                     "C_size": int(C.size), "eps": args.eps,
                     "alpha_inverse": alpha_inv, "seed": args.seed},
        "lockstep_laplacian": lockstep,
        "determinism": determinism,
        "incremental_equality": incremental,
        "reduction_metrics": reductions,
        "end_to_end": e2e,
        "scale_probe": scale,
        "targets": {"end_to_end_speedup": FULL_SPEEDUP,
                    "reductions": "> 1x each"},
        "pass": ok,
        "platform": {"python": platform.python_version(),
                     "numpy": np.__version__,
                     "machine": platform.machine(),
                     "cpu_count": os.cpu_count()},
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    red = reductions["reductions"]
    print(f"lockstep Laplacian: {'ok' if lockstep['ok'] else 'FAIL'} "
          f"(max weight rel err {lockstep['max_weight_rel_err']:.2e})")
    print(f"determinism matrix: {determinism}   "
          f"incremental: {incremental}")
    print(f"reductions at p01: stored-edges {red['stored_edges_total']:.1f}x  "
          f"peak-bytes {red['peak_edge_bytes']:.1f}x  "
          f"alias-rebuilds {red['alias_rebuilt_slots']:.1f}x")
    print(f"end-to-end: bisect {e2e['bisect_baseline']['seconds']:.3f}s  "
          f"alias+coalesce {e2e['alias_coalesce']['seconds']:.3f}s  "
          f"-> {e2e['speedup']:.2f}x "
          f"({'informational in smoke' if args.smoke else 'target >= 1.2x'})")
    print(f"scale probe (power-law n={scale['n']}): "
          f"off {scale['off']['seconds']:.1f}s "
          f"{scale['off']['peak_edge_bytes'] / 1e6:.1f} MB edges  "
          f"on {scale['on']['seconds']:.1f}s "
          f"{scale['on']['peak_edge_bytes'] / 1e6:.1f} MB edges  "
          f"-> {scale['peak_edge_bytes_reduction']:.1f}x peak-bytes")
    print(f"{'PASS' if ok else 'FAIL'} -> {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
