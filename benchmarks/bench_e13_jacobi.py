"""E13 — Lemma 3.5: the Jacobi operator's sandwich M ≼ Z⁻¹ ≼ M + εY
and its O(m log 1/ε) application cost.
"""

import numpy as np
import pytest
import scipy.linalg

from conftest import record, workload

from repro.core.dd_subset import five_dd_subset
from repro.graphs.laplacian import laplacian_blocks
from repro.linalg.jacobi import JacobiOperator, jacobi_terms


def _blocks(seed=13):
    g = workload("grid", 400, seed=seed)
    F = five_dd_subset(g, seed=seed)
    C = np.setdiff1d(np.arange(g.n), F)
    return laplacian_blocks(g, F, C)


@pytest.mark.parametrize("eps", [0.5, 0.1, 0.02])
def test_e13_sandwich(benchmark, eps):
    blocks = _blocks()
    op = JacobiOperator(blocks.X, blocks.Y, eps)
    b = np.random.default_rng(0).standard_normal(op.n)

    benchmark(lambda: op.apply(b))
    Zinv = op.dense_Zinv()
    M = np.diag(blocks.X) + blocks.Y.toarray()
    lo = float(scipy.linalg.eigvalsh(Zinv - M).min())
    hi = float(scipy.linalg.eigvalsh(M + eps * blocks.Y.toarray()
                                     - Zinv).min())
    record(benchmark, eps=eps, terms=op.l,
           lower_margin=lo, upper_margin=hi)
    assert lo > -1e-8   # M ≼ Z⁻¹
    assert hi > -1e-8   # Z⁻¹ ≼ M + εY


def test_e13_cost_scales_with_log_eps(benchmark):
    """Application cost ∝ l = O(log 1/ε) Jacobi terms."""
    blocks = _blocks()
    b = np.random.default_rng(1).standard_normal(blocks.X.size)
    terms = {eps: jacobi_terms(eps) for eps in (0.5, 0.05, 0.005)}

    op = JacobiOperator(blocks.X, blocks.Y, 0.005)
    benchmark(lambda: op.apply(b))
    record(benchmark, terms_by_eps={str(k): v for k, v in terms.items()})
    assert terms[0.005] > terms[0.05] > terms[0.5]
    assert terms[0.005] <= np.log2(3 / 0.005) + 2
