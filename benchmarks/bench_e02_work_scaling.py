"""E2 — Theorem 1.1 work: Õ(m log³ n), i.e. near-linear in m.

We measure the PRAM-ledger work of the full pipeline (splitting +
BlockCholesky + one solve) over a size sweep and fit the power law
``work ≈ c·m^a``.  The theorem predicts ``a ≈ 1`` up to polylog
factors; a super-linear exponent (a ≥ 1.5) would falsify the shape.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro import LaplacianSolver, default_options, use_ledger
from repro.theory.complexity import fit_power_law

SIZES = [150, 300, 600, 1200]


def _ledger_work(name: str, n_target: int) -> tuple[int, float, float]:
    g = workload(name, n_target, seed=2)
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0
    with use_ledger() as ledger:
        solver = LaplacianSolver(g, options=default_options(), seed=0)
        solver.solve(b, eps=1e-4)
    return g.m, ledger.work, ledger.depth


@pytest.mark.parametrize("name", ["grid", "er"])
def test_e02_work_near_linear_in_m(benchmark, name):
    rows = [_ledger_work(name, n) for n in SIZES[:-1]]

    def final():
        return _ledger_work(name, SIZES[-1])

    rows.append(benchmark.pedantic(final, rounds=1, iterations=1))
    ms = np.array([r[0] for r in rows], dtype=float)
    works = np.array([r[1] for r in rows])
    fit_raw = fit_power_law(ms, works)
    overhead = works / ms  # the theorem says this is polylog(n)
    record(benchmark, workload=name, sizes=SIZES,
           edge_counts=ms.tolist(), ledger_work=works.tolist(),
           raw_exponent_vs_m=fit_raw.exponent,
           work_per_edge=overhead.tolist())
    # Õ(m·polylog): per-edge overhead must be polylog-shaped in m —
    # exponent-fitting the raw totals is unreliable at laptop scale
    # because the chain-depth transient log(n/100) dominates (see
    # bench_e03's docstring), so test the shape the theorem states.
    from repro.theory.complexity import is_polylog_shaped

    assert is_polylog_shaped(ms, overhead, max_power=6)
    # And the raw growth is clearly sub-quadratic in m.  (The chain
    # transient inflates small-sweep exponents to ~1.3-1.8 even though
    # the asymptotic slope is 1; quadratic would mean the edge-budget
    # invariant broke.)
    assert fit_raw.exponent < 1.9


def test_e02_polylog_overhead_bounded(benchmark):
    """work/m must grow slower than any polynomial: check the
    normalised overhead against log powers."""
    from repro.theory.complexity import is_polylog_shaped

    rows = [_ledger_work("grid", n) for n in SIZES[:-1]]

    def final():
        return _ledger_work("grid", SIZES[-1])

    rows.append(benchmark.pedantic(final, rounds=1, iterations=1))
    ns = np.array(SIZES, dtype=float)
    overhead = np.array([w / m for m, w, _ in rows])
    record(benchmark, overhead_work_per_edge=overhead.tolist())
    assert is_polylog_shaped(ns, overhead, max_power=6)
