"""E6 — Lemma 3.4: 5DDSubset returns |F| ≥ n/40 in O(1) expected rounds.

Measures (a) the subset size fraction, (b) the empirical round count
distribution (the proof bounds the per-round failure probability by
1/2), and (c) that the output really is 5-DD; times one invocation.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.core.dd_subset import DDSubsetStats, five_dd_subset, \
    verify_five_dd


@pytest.mark.parametrize("name", ["grid", "expander", "er", "barbell"])
def test_e06_size_rounds_validity(benchmark, name):
    g = workload(name, 800, seed=6)
    rng_seeds = range(20)
    rounds, sizes = [], []
    for seed in rng_seeds:
        stats = DDSubsetStats()
        F = five_dd_subset(g, seed=seed, stats=stats)
        assert verify_five_dd(g, F)
        rounds.append(stats.rounds)
        sizes.append(F.size)

    F = benchmark(lambda: five_dd_subset(g, seed=99))
    record(benchmark, workload=name, n=g.n,
           mean_rounds=float(np.mean(rounds)),
           max_rounds=int(np.max(rounds)),
           mean_size_fraction=float(np.mean(sizes)) / g.n)
    assert np.mean(rounds) <= 4.0          # O(1) expected
    assert min(sizes) > g.n / 40.0          # Lemma 3.4 size bound
