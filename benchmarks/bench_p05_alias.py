"""P5 — O(1)-per-step alias sampling vs global-bisection row sampling.

The walker-stepping phase resolves millions of "sample a neighbour of
my current vertex" queries per ``approx_schur``.  The historical
realisation bisects a global cumulative-weight array — O(log m)
sequential work per query; the PR-5 :class:`CSRAliasSampler` realises
the paper's Lemma 2.6 accounting literally: per-row alias planes built
in linear time, O(1) per query (one uniform, a fan-out multiply, two
gathers, one comparison).

Measured at the p01 workload (grid n≈2025, ε=0.5):

* **walk phase** — ``WalkEngine.run`` over the full round-0 walker
  batch of ``terminal_walks`` (identical starts, identical seed) per
  sampler; the full run **gates** ``bisect / alias ≥ 1.5×``.  On a
  unit-weight grid the α-split keeps every row uniform, so the two
  samplers take *identical* walks at round 0 — the ratio isolates pure
  sampler cost.
* **end-to-end** — ``approx_schur`` per sampler (informational).

Always-on correctness gates (both samplers):

* **invariance** — fixed seed + fixed sampler ⇒ bit-identical
  ``approx_schur`` across ``{serial, thread, process}`` × ``{1, 2, 4}``
  workers, with no leaked shared-memory segments;
* **incremental equality** — the incrementally maintained alias planes
  (and the bisect path's maintained CSR) reproduce the from-scratch
  rebuild bit-for-bit end to end (``incremental=True`` ==
  ``incremental=False``).

Results land in ``BENCH_alias.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p05_alias.py           # full
    PYTHONPATH=src python benchmarks/bench_p05_alias.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import default_options
from repro.core.boundedness import naive_split
from repro.core.schur import approx_schur, schur_alpha_inverse
from repro.graphs import generators as G
from repro.pram.executor import BACKENDS, live_segment_names
from repro.sampling.walks import SAMPLERS, WalkEngine

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 1.5


def make_workload(n_target: int, seed: int):
    """The p01 workload: a ~n-vertex grid with |C| = n/3 terminals."""
    side = max(4, int(round(math.sqrt(n_target))))
    g = G.grid2d(side, side)
    rng = np.random.default_rng(seed)
    C = np.sort(rng.choice(g.n, size=max(4, g.n // 3), replace=False))
    return g, C


def walk_phase(g, C, eps: float, seed: int, repeats: int) -> dict:
    """Time ``WalkEngine.run`` over terminal_walks' round-0 batch."""
    work = naive_split(g, 1.0 / schur_alpha_inverse(g.n, eps))
    is_term = np.zeros(g.n, dtype=bool)
    is_term[C] = True
    mult = work.multiplicities()
    widx = np.nonzero(~(is_term[work.u] & is_term[work.v]))[0]
    k = mult[widx]
    starts = np.concatenate([np.repeat(work.u[widx], k),
                             np.repeat(work.v[widx], k)])
    out: dict = {"walkers": int(starts.size),
                 "stored_edges": int(work.m),
                 "logical_edges": int(work.m_logical)}
    engines = {kind: WalkEngine(work, is_term, sampler=kind)
               for kind in SAMPLERS}
    best: dict = {kind: None for kind in SAMPLERS}
    results: dict = {}
    # Interleave the repeats so neither sampler systematically runs
    # with colder caches or under different transient load.
    for _ in range(repeats):
        for kind in SAMPLERS:
            t0 = time.perf_counter()
            results[kind] = engines[kind].run(starts, seed=seed)
            elapsed = time.perf_counter() - t0
            best[kind] = elapsed if best[kind] is None \
                else min(best[kind], elapsed)
    for kind in SAMPLERS:
        out[kind] = {"seconds": best[kind],
                     "rounds": int(results[kind].rounds),
                     "total_steps": int(results[kind].length.sum())}
    out["speedup"] = out["bisect"]["seconds"] / out["alias"]["seconds"]
    return out


def end_to_end(g, C, eps: float, seed: int, repeats: int) -> dict:
    """approx_schur wall-clock per sampler (informational)."""
    out: dict = {}
    for kind in SAMPLERS:
        opts = default_options().with_(sampler=kind)
        best = None
        report = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            report = approx_schur(g, C, eps=eps, seed=seed, options=opts,
                                  return_report=True)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        out[kind] = {"seconds": best,
                     "rounds": int(report.rounds),
                     "total_walkers": int(report.total_walkers)}
    out["speedup"] = out["bisect"]["seconds"] / out["alias"]["seconds"]
    return out


def invariance_gate(seed: int) -> dict:
    """Per sampler: bit-identical approx_schur across the backend
    matrix, and no leaked shared-memory segments afterwards."""
    g = G.grid2d(14, 14)
    C = np.arange(0, g.n, 3)
    out: dict = {}
    saved = {k: os.environ.get(k) for k in ("REPRO_BACKEND",
                                            "REPRO_WORKERS")}
    try:
        for kind in SAMPLERS:
            opts = default_options().with_(chunk_items=512, sampler=kind)
            base = None
            ok = True
            for backend in BACKENDS:
                for workers in (1, 2, 4):
                    os.environ["REPRO_BACKEND"] = backend
                    os.environ["REPRO_WORKERS"] = str(workers)
                    got = approx_schur(g, C, eps=0.5, seed=seed,
                                       options=opts)
                    if base is None:
                        base = got
                    elif got != base:
                        ok = False
            out[kind] = ok
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    out["shm_clean"] = live_segment_names() == ()
    return out


def incremental_gate(seed: int) -> dict:
    """Per sampler: maintained planes/CSR == from-scratch rebuilds."""
    g = G.grid2d(13, 13)
    C = np.arange(0, g.n, 4)
    out = {}
    for kind in SAMPLERS:
        opts = default_options().with_(sampler=kind)
        a = approx_schur(g, C, eps=0.5, seed=seed, options=opts,
                         incremental=True)
        b = approx_schur(g, C, eps=0.5, seed=seed, options=opts,
                         incremental=False)
        out[kind] = a == b
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000,
                    help="target vertex count (default 2000)")
    ap.add_argument("--eps", type=float, default=0.5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repetitions per mode (best is kept)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: n=400, one repeat, speedup "
                         "informational (single-repeat wall-clock on "
                         "shared runners is noisy)")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_alias.json")
    args = ap.parse_args(argv)

    args.repeats = max(1, args.repeats)
    if args.smoke:
        args.n = min(args.n, 400)
        args.repeats = 1

    g, C = make_workload(args.n, args.seed)
    alpha_inv = schur_alpha_inverse(g.n, args.eps)
    print(f"workload: grid n={g.n} m={g.m} |C|={C.size} "
          f"eps={args.eps} alpha_inv={alpha_inv}")

    walk = walk_phase(g, C, args.eps, args.seed, args.repeats)
    e2e = end_to_end(g, C, args.eps, args.seed, args.repeats)
    invariance = invariance_gate(args.seed)
    incremental = incremental_gate(args.seed)

    gates_ok = (all(invariance[k] for k in SAMPLERS)
                and invariance["shm_clean"]
                and all(incremental[k] for k in SAMPLERS))
    # Wall-clock is gated on the full run only (the deterministic
    # invariance/equality gates are always on) — same convention as
    # the p01 smoke.
    speed_ok = args.smoke or walk["speedup"] >= FULL_SPEEDUP
    ok = gates_ok and speed_ok

    result = {
        "benchmark": "p05_alias",
        "mode": "smoke" if args.smoke else "full",
        "workload": {"kind": "grid2d", "n": g.n, "m": g.m,
                     "C_size": int(C.size), "eps": args.eps,
                     "alpha_inverse": alpha_inv, "seed": args.seed},
        "walk_phase": walk,
        "end_to_end": e2e,
        "invariance": invariance,
        "incremental_equality": incremental,
        "targets": {"walk_phase_speedup": FULL_SPEEDUP},
        "pass": ok,
        "platform": {"python": platform.python_version(),
                     "numpy": np.__version__,
                     "machine": platform.machine()},
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"walk phase ({walk['walkers']} walkers): "
          f"bisect {walk['bisect']['seconds']:.3f}s  "
          f"alias {walk['alias']['seconds']:.3f}s  "
          f"-> {walk['speedup']:.2f}x "
          f"({'informational in smoke' if args.smoke else 'target >= 1.5x'})")
    print(f"end-to-end approx_schur: "
          f"bisect {e2e['bisect']['seconds']:.3f}s  "
          f"alias {e2e['alias']['seconds']:.3f}s  "
          f"-> {e2e['speedup']:.2f}x (informational)")
    print(f"invariance: {invariance}   incremental: {incremental}")
    print(f"{'PASS' if ok else 'FAIL'} -> {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
