"""E8 — Lemma 5.1: E[L_H] = SC(L_G, C), and the martingale stays tight.

Monte-Carlo mean of TerminalWalks outputs vs the dense Schur oracle
(entrywise), plus the Section 5 martingale deviation trace of a full
BlockCholesky run against the Theorem 3.9 envelope.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.config import SolverOptions
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.terminal_walks import terminal_walks
from repro.graphs.laplacian import laplacian
from repro.linalg.pinv import exact_schur_complement
from repro.theory.concentration import martingale_deviation_trace


def test_e08_unbiasedness(benchmark):
    g = workload("grid", 36, seed=8)  # small: dense oracle is exact
    C = np.arange(0, g.n, 2)
    SC = exact_schur_complement(laplacian(g).toarray(), C)
    trials = 3000
    rng = np.random.default_rng(0)

    def accumulate():
        acc = np.zeros((C.size, C.size))
        for _ in range(trials):
            H = terminal_walks(g, C, seed=rng)
            acc += laplacian(H).toarray()[np.ix_(C, C)]
        return acc / trials

    mean = benchmark.pedantic(accumulate, rounds=1, iterations=1)
    bias = np.abs(mean - SC).max() / np.abs(SC).max()
    record(benchmark, trials=trials, relative_entrywise_bias=bias)
    assert bias < 0.06


def test_e08_martingale_deviation(benchmark):
    g = workload("grid", 49, seed=8)
    H = naive_split(g, 0.05)

    def build_and_trace():
        chain = block_cholesky(H, SolverOptions(min_vertices=12), seed=3)
        return martingale_deviation_trace(g, chain)

    devs = benchmark.pedantic(build_and_trace, rounds=1, iterations=1)
    record(benchmark, deviation_trace=[float(d) for d in devs],
           max_deviation=float(max(devs)))
    # Theorem 3.9's success event: deviation <= 0.3 (we allow the
    # ≈_{0.5} budget at toy scale).
    assert max(devs) <= 0.5
