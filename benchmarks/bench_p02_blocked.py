"""P2 — blocked multi-RHS solves: one factorization, k right-hand sides.

Measures the Section-6 JL leverage-estimation phase
(``leverage_overestimates``) on a ~n-vertex grid, comparing the blocked
path (all ``q ≈ 8 ln n + 4`` sketch solves issued as **one** multi-RHS
solve, BLAS-3-style sparse×dense kernels throughout) against
``blocked=False`` — the seed-faithful loop of ``q`` sequential
single-vector solves.  Both modes draw identical randomness (the sign
matrix is generated row-by-row either way), so the resulting ``τ̂``
vectors must agree to solver tolerance.

Also records the ``keep_graphs=False`` memory satellite: retained
per-level graph bytes and tracemalloc peak of ``block_cholesky`` with
and without streaming mode.

Reported:

* wall-clock seconds per mode (best of ``--repeats``) and speedup,
* max relative deviation between blocked and looped ``τ̂``,
* chain graph bytes retained + allocation peak for
  ``keep_graphs=True`` vs ``False``.

Acceptance targets (ISSUE 2): ≥ 3× JL-phase speedup at n≈2000 with
agreement ≤ ``AGREE_RTOL``.  The smoke run gates only the
deterministic checks (agreement, streaming-mode memory); single-repeat
wall-clock on a shared CI runner is reported but not enforced.
Results land in ``BENCH_blocked.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p02_blocked.py           # full
    PYTHONPATH=src python benchmarks/bench_p02_blocked.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.config import practical_options
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.lev_est import leverage_overestimates
from repro.graphs import generators as G

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 3.0
SMOKE_SPEEDUP = 1.3          # informational in smoke mode
AGREE_RTOL = 0.1             # blocked vs looped tau_hat agreement


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    return G.grid2d(side, side)


def run_mode(g, K, seed, opts, blocked: bool, repeats: int):
    best, tau = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        tau = leverage_overestimates(g, K=K, seed=seed, options=opts,
                                     blocked=blocked)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, tau


def chain_graph_bytes(chain) -> int:
    """Bytes held by the chain's retained per-level graph edge arrays."""
    if chain.graphs is None:
        return 0
    total = 0
    for g in chain.graphs:
        total += g.u.nbytes + g.v.nbytes + g.w.nbytes
        if g.mult is not None:
            total += g.mult.nbytes
    return total


def measure_keep_graphs(g, opts, seed):
    """Retained bytes + allocation peak with and without streaming."""
    H = naive_split(g, opts.alpha(g.n))
    out = {}
    for keep in (True, False):
        tracemalloc.start()
        chain = block_cholesky(H, opts, seed=seed, keep_graphs=keep)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        key = "keep_graphs" if keep else "streaming"
        out[key] = {
            "retained_graph_bytes": chain_graph_bytes(chain),
            "tracemalloc_peak_bytes": int(peak),
            "chain_depth": chain.d,
            "stored_edges_total": chain.total_stored_edges(),
        }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=2000,
                    help="target vertex count (default 2000)")
    ap.add_argument("--K", type=float, default=4.0,
                    help="uniform sparsification factor for the JL phase")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=2,
                    help="timing repetitions per mode (best is kept)")
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: n=400, one repeat, wall-clock "
                         "informational")
    ap.add_argument("--output", type=Path,
                    default=REPO_ROOT / "BENCH_blocked.json")
    args = ap.parse_args(argv)

    args.repeats = max(1, args.repeats)
    if args.smoke:
        args.n = min(args.n, 400)
        args.repeats = 1
    speed_target = SMOKE_SPEEDUP if args.smoke else FULL_SPEEDUP

    g = make_workload(args.n)
    opts = practical_options(seed=args.seed)
    q = int(math.ceil(8.0 * math.log(max(g.n, 3)))) + 4
    print(f"workload: grid n={g.n} m={g.m} K={args.K} "
          f"jl_rows={q} seed={args.seed}")

    blocked_s, tau_b = run_mode(g, args.K, args.seed, opts,
                                blocked=True, repeats=args.repeats)
    looped_s, tau_l = run_mode(g, args.K, args.seed, opts,
                               blocked=False, repeats=args.repeats)

    speedup = looped_s / blocked_s
    agree = float(np.max(np.abs(tau_b - tau_l)
                         / np.maximum(tau_l, 1e-12)))
    mem = measure_keep_graphs(g, opts, args.seed)
    streamed_ok = (mem["streaming"]["retained_graph_bytes"] == 0
                   and mem["keep_graphs"]["retained_graph_bytes"] > 0)

    # Smoke (CI) gates only the deterministic checks: tau agreement and
    # the streaming-mode memory drop.  The full run also enforces the
    # >= 3x JL-phase speedup target.
    ok = agree <= AGREE_RTOL and streamed_ok \
        and (args.smoke or speedup >= speed_target)

    result = {
        "benchmark": "p02_blocked",
        "mode": "smoke" if args.smoke else "full",
        "workload": {"kind": "grid2d", "n": g.n, "m": g.m,
                     "K": args.K, "jl_rows": q, "seed": args.seed},
        "blocked_seconds": blocked_s,
        "looped_seconds": looped_s,
        "speedup": speedup,
        "tau_max_rel_deviation": agree,
        "keep_graphs_memory": mem,
        "targets": {"speedup": speed_target, "agree_rtol": AGREE_RTOL},
        "pass": ok,
        "platform": {"python": platform.python_version(),
                     "numpy": np.__version__,
                     "machine": platform.machine()},
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")

    print(f"blocked: {blocked_s:.3f}s   looped: {looped_s:.3f}s   "
          f"speedup: {speedup:.2f}x "
          f"({'informational in smoke' if args.smoke else f'target >= {speed_target}x'})")
    print(f"tau agreement: max rel deviation {agree:.2e} "
          f"(target <= {AGREE_RTOL})")
    kg, st = mem["keep_graphs"], mem["streaming"]
    print(f"keep_graphs=True:  retained {kg['retained_graph_bytes'] / 1e6:.2f} MB  "
          f"peak {kg['tracemalloc_peak_bytes'] / 1e6:.2f} MB")
    print(f"keep_graphs=False: retained {st['retained_graph_bytes'] / 1e6:.2f} MB  "
          f"peak {st['tracemalloc_peak_bytes'] / 1e6:.2f} MB")
    print(f"{'PASS' if ok else 'FAIL'} -> {args.output}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
