"""E1 — Theorem 1.1 accuracy: ‖x̃ − L⁺b‖_L ≤ ε‖L⁺b‖_L.

Paper claim: the solver returns an ε-approximate solution (whp) for any
requested 0 < ε < 1/2.  We sweep workloads × ε and assert the measured
relative L-norm error is below target on every cell; the benchmark
timing is the per-solve latency given a prebuilt factorization.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro import LaplacianSolver, practical_options
from repro.graphs.laplacian import laplacian
from repro.linalg.ops import relative_lnorm_error
from repro.linalg.pinv import exact_solution


@pytest.mark.parametrize("name", ["grid", "expander", "er",
                                  "weighted_grid"])
@pytest.mark.parametrize("eps", [1e-1, 1e-4, 1e-8])
def test_e01_accuracy(benchmark, name, eps, balanced_rhs):
    g = workload(name, 400, seed=1)
    b = balanced_rhs(g)
    solver = LaplacianSolver(g, options=practical_options(), seed=0)
    xstar = exact_solution(g, b)
    L = laplacian(g)

    x = benchmark(lambda: solver.solve(b, eps=eps))
    err = relative_lnorm_error(L, x, xstar)
    record(benchmark, workload=name, n=g.n, m=g.m, eps=eps,
           measured_error=err,
           iterations=solver.solve_report(b, eps=eps).iterations)
    assert err <= eps


def test_e01_error_vs_iterations_decay(benchmark, balanced_rhs):
    """log(1/ε) iterations suffice: error decays geometrically in the
    Richardson iteration count."""
    from repro.core.richardson import preconditioned_richardson
    from repro.linalg.ops import energy_norm

    g = workload("grid", 400)
    b = balanced_rhs(g)
    solver = LaplacianSolver(g, options=practical_options(), seed=0)
    xstar = exact_solution(g, b)
    L = laplacian(g)

    def run():
        res = preconditioned_richardson(
            solver.apply_L, solver.preconditioner.apply, b,
            delta=1.0, eps=1e-10,
            track_errors=lambda x: energy_norm(L, x - xstar))
        return res.error_history

    history = benchmark(run)
    hist = np.array(history)
    hist = hist[hist > 1e-13]
    # Fit the geometric rate; must be < 1 (Theorem 3.8's contraction).
    rate = (hist[-1] / hist[0]) ** (1.0 / max(len(hist) - 1, 1))
    record(benchmark, contraction_rate=float(rate),
           iterations_tracked=len(hist))
    assert rate < 0.9
