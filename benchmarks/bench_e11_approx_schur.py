"""E11 — Theorem 7.1: ApproxSchur gives L_{G_S} ≈_ε SC(L, C), ≤ m edges.

Sweeps ε; measures the exact Loewner factor against the dense Schur
oracle, the edge budget, and the O(log s) round count.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.core.schur import approx_schur
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import approximation_factor
from repro.linalg.pinv import exact_schur_complement


@pytest.mark.parametrize("eps", [0.5, 0.3, 0.15])
def test_e11_approximation_factor(benchmark, eps):
    g = workload("grid", 64, seed=11)
    C = np.arange(0, g.n, 3)
    SC = exact_schur_complement(laplacian(g).toarray(), C)

    report = benchmark(lambda: approx_schur(g, C, eps=eps, seed=0,
                                            return_report=True))
    H = report.graph
    LH = laplacian(H).toarray()[np.ix_(C, C)]
    measured = approximation_factor(LH, SC)
    record(benchmark, target_eps=eps, measured_eps=float(measured),
           multiedges_out=H.m, multiedges_in=report.edges_per_round[0],
           distinct_edges_out=H.coalesced().m, rounds=report.rounds)
    assert measured <= eps
    assert all(m <= report.edges_per_round[0]
               for m in report.edges_per_round)


def test_e11_rounds_scale_with_interior(benchmark):
    """d = O(log s) where s = |V ∖ C| — not O(log n)."""
    g = workload("grid", 400, seed=11)
    rng = np.random.default_rng(1)

    def rounds_for(s: int) -> int:
        interior = rng.choice(g.n, size=s, replace=False)
        C = np.setdiff1d(np.arange(g.n), interior)
        report = approx_schur(g, C, eps=0.5, seed=2, return_report=True)
        return report.rounds

    small = rounds_for(8)
    large = benchmark.pedantic(lambda: rounds_for(g.n // 2),
                               rounds=1, iterations=1)
    record(benchmark, rounds_small_interior=small,
           rounds_half_interior=large)
    assert small <= large
    assert large <= np.log(g.n) / np.log(40 / 39) + 10
