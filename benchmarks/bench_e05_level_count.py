"""E5 — Theorem 3.9-(4): d ≤ log_{40/39} n = O(log n) levels.

Sweep n geometrically; the measured level count must stay below the
paper's explicit bound and grow ~logarithmically (ratio d/log n within
a constant band).
"""

import numpy as np
import pytest

from conftest import record, workload

from repro import LaplacianSolver, default_options

SIZES = [150, 300, 600, 1200, 2400]


def _levels(n_target: int) -> tuple[int, int]:
    g = workload("grid", n_target, seed=5)
    solver = LaplacianSolver(g, options=default_options(), seed=0)
    return g.n, solver.chain.d


def test_e05_levels_logarithmic(benchmark):
    rows = [_levels(n) for n in SIZES[:-1]]

    def final():
        return _levels(SIZES[-1])

    rows.append(benchmark.pedantic(final, rounds=1, iterations=1))
    ns = np.array([r[0] for r in rows], dtype=float)
    ds = np.array([r[1] for r in rows], dtype=float)
    bound = np.log(ns) / np.log(40.0 / 39.0)
    ratio = ds / np.log(ns)
    record(benchmark, sizes=ns.tolist(), levels=ds.tolist(),
           paper_bound=bound.tolist(), d_over_log_n=ratio.tolist())
    assert np.all(ds <= bound + 10)
    # d/log n bounded within a modest band (logarithmic growth).
    assert ratio.max() <= 3.0 * ratio.min()
