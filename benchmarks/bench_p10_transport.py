"""P10 — hardened transport: faults on the wire are invisible in results.

Measures the PR-10 tentpole end-to-end: the distributed backend's
framed, checksummed, authenticated transport with lease-based
scheduling, plus the serving layer's admission control.  Every gate is
**always on** (smoke mode shrinks the workload, never the checks):

* **Wire-fault invariance** — a blocked solve over the distributed
  backend must be **bit-identical** (solutions *and* ledger work/depth
  totals) to the serial baseline under every transport fault kind:
  ``drop`` / ``corrupt`` / ``delay`` frame faults, a worker
  ``disconnect``, a hard ``kill`` and a heartbeat-detected ``hang``
  mid-round — each recovered by retransmission or in-place worker
  replacement, never a pool teardown (``pool_rebuild`` must be 0).
* **Payload-mode equivalence** — ``REPRO_TRANSPORT=tcp`` (chain and
  dispatch arrays shipped in-band as chunked frames) must be
  bit-identical to the default ``shm`` mode, publish **no**
  shared-memory segments, and survive a corrupt payload frame.
* **Admission control** — an offered-load burst above
  ``REPRO_SERVE_MAX_PENDING`` is shed with HTTP 503 + ``Retry-After``
  while every in-budget request completes; consecutive batch failures
  open the circuit breaker (fail-fast), and it re-closes after the
  fault clears.
* **Hygiene** — after teardown the segment registry is empty and every
  worker process is reaped.

Results land in ``BENCH_transport.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p10_transport.py           # full
    PYTHONPATH=src python benchmarks/bench_p10_transport.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.config import practical_options, reset_env_caches
from repro.core.solver import LaplacianSolver
from repro.errors import ServiceOverloadedError
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import (
    live_distributed_workers,
    live_segment_names,
    shutdown_distributed_pools,
)
from repro.pram.faults import InjectedFault, use_faults
from repro.serve import SolverService

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 1234
WORKERS = 2
N_RHS = 4
CHUNK_COLUMNS = 2
EPS = 1e-6

#: scenario name -> (fault plan, required FaultLog actions).  Frame
#: faults recover inside the channel (retransmit / NAK+resend); the
#: death scenarios must show an in-place replacement.  ``hang``
#: suspends the worker's heartbeats and freezes it — only heartbeat
#: monitoring can detect that, so it runs with a tight heartbeat.
SCENARIOS = {
    "drop": ("drop:frame=0", ("inject", "retransmit")),
    "corrupt": ("corrupt:frame=0", ("inject", "nak")),
    "delay": ("delay:seconds=0.01", ("inject",)),
    "disconnect": ("disconnect:worker=0",
                   ("worker_dead", "worker_replace", "retry")),
    "kill": ("kill:chunk=1:stage=transport",
             ("worker_dead", "worker_replace", "retry")),
    "hang": ("hang:chunk=0:stage=transport:seconds=30",
             ("worker_dead", "worker_replace")),
}

HANG_HEARTBEAT_S = 0.3


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    g = G.grid2d(side, side)
    rng = np.random.default_rng(7)
    B = rng.standard_normal((g.n, N_RHS))
    B -= B.mean(axis=0)
    return g, B


def ledgered_solve(solver, B, plan=None):
    """One blocked solve under ledger + fault accounting.

    Fault events are read from the report: ``solve_many_report``
    installs its own :class:`FaultLog`, so wire-level recovery actions
    (retransmit/nak/worker_dead/...) land there, not in any ambient
    log.  Callers must warm the solver (one un-ledgered blocked solve)
    first so the lazily built CSR Laplacian does not charge the first
    ledger and no other.
    """
    t0 = time.perf_counter()
    with use_faults(plan):
        with use_ledger() as ledger:
            report = solver.solve_many_report(B, eps=EPS)
    elapsed = time.perf_counter() - t0
    return (report.x, (ledger.work, ledger.depth),
            dict(report.fault_log.summary()), elapsed)


def run_wire_scenarios(g, B, X0, ledger0, failures):
    """Gate (a): every transport fault kind is invisible in results."""
    opts = practical_options().with_(
        backend="distributed", ship_solves=True, workers=WORKERS,
        chunk_columns=CHUNK_COLUMNS, retries=2)
    solver = LaplacianSolver(g, options=opts, seed=SEED)
    solver.solve_many(B, eps=EPS)  # warm the lazy CSR Laplacian
    runs = {}

    shutdown_distributed_pools()
    Xc, ledgerc, _, tc = ledgered_solve(solver, B)
    if not np.array_equal(Xc, X0) or ledgerc != ledger0:
        failures.append("clean distributed solve differs from serial")
    print(f"clean distributed@{WORKERS}: {tc:.3f}s")

    for name, (plan, wanted) in SCENARIOS.items():
        # Fresh pool per scenario: frame counters and worker ids
        # restart at 0, so frame=/worker= selectors are deterministic.
        shutdown_distributed_pools()
        if name == "hang":
            os.environ["REPRO_HEARTBEAT_S"] = str(HANG_HEARTBEAT_S)
        Xf, ledgerf, actions, tf = ledgered_solve(solver, B, plan)
        if name == "hang":
            del os.environ["REPRO_HEARTBEAT_S"]
        bit_identical = bool(np.array_equal(Xf, X0))
        ledger_ok = ledgerf == ledger0
        fired = all(actions.get(a, 0) >= 1 for a in wanted)
        no_teardown = actions.get("pool_rebuild", 0) == 0
        runs[name] = {"plan": plan, "seconds": tf,
                      "bit_identical": bit_identical,
                      "ledger_invariant": ledger_ok,
                      "fault_log": actions}
        status = "ok" if (bit_identical and ledger_ok and fired
                          and no_teardown) else "FAIL"
        print(f"{name}: {tf:.3f}s log={actions} -> {status}")
        if not bit_identical:
            failures.append(f"{name}: solution differs from serial")
        if not ledger_ok:
            failures.append(f"{name}: ledger {ledgerf} != {ledger0}")
        if not fired:
            failures.append(f"{name}: expected {wanted}, log={actions}")
        if not no_teardown:
            failures.append(f"{name}: pool was torn down, not repaired")
    return runs


def run_tcp_mode(g, B, X0, ledger0, failures):
    """Gate (b): in-band payload shipping ≡ shared-memory publishing."""
    opts = practical_options().with_(
        backend="distributed", ship_solves=True, workers=WORKERS,
        chunk_columns=CHUNK_COLUMNS, retries=2)
    os.environ["REPRO_TRANSPORT"] = "tcp"
    reset_env_caches()
    # Built and warmed *in tcp mode*: the persistent chain payload
    # must never touch /dev/shm on this path.
    solver = LaplacianSolver(g, options=opts, seed=SEED)
    solver.solve_many(B, eps=EPS)  # warm the lazy CSR Laplacian
    runs = {}
    try:
        shutdown_distributed_pools()
        Xt, ledgert, _, tt = ledgered_solve(solver, B)
        no_shm = live_segment_names() == ()
        runs["clean"] = {"seconds": tt,
                         "bit_identical": bool(np.array_equal(Xt, X0)),
                         "ledger_invariant": ledgert == ledger0,
                         "no_shm_segments": no_shm}
        print(f"tcp clean: {tt:.3f}s -> "
              f"{'ok' if all(runs['clean'].values()) else 'FAIL'}")
        if not np.array_equal(Xt, X0):
            failures.append("tcp mode differs from shm/serial")
        if ledgert != ledger0:
            failures.append(f"tcp ledger {ledgert} != {ledger0}")
        if not no_shm:
            failures.append(
                f"tcp mode leaked segments {live_segment_names()}")

        # A corrupt frame under the (large) in-band payload transfer.
        shutdown_distributed_pools()
        Xf, ledgerf, actions, tf = ledgered_solve(
            solver, B, "corrupt:frame=1")
        ok = (np.array_equal(Xf, X0) and ledgerf == ledger0
              and actions.get("nak", 0) >= 1)
        runs["corrupt"] = {"seconds": tf, "bit_identical":
                           bool(np.array_equal(Xf, X0)),
                           "fault_log": actions}
        print(f"tcp corrupt: {tf:.3f}s log={actions} -> "
              f"{'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(f"tcp corrupt-frame recovery failed "
                            f"(log={actions})")
    finally:
        del os.environ["REPRO_TRANSPORT"]
        reset_env_caches()
        shutdown_distributed_pools()
    return runs


def run_admission(g, failures, *, burst: int):
    """Gate (c): overload sheds 503s; the breaker opens and re-closes."""
    rng = np.random.default_rng(SEED)
    b = rng.standard_normal(g.n)
    b -= b.mean()
    stats = {}
    with SolverService(window_ms=500.0, max_pending=2, breaker_fails=2,
                       breaker_cooldown_s=0.5) as svc:
        key = svc.register(g, seed=SEED)
        host, port = svc.serve_http("127.0.0.1", 0)

        # -- offered-load burst above the admission budget ---------------
        in_budget = [svc.submit(key, b, eps=EPS) for _ in range(2)]
        deadline = time.monotonic() + 10.0
        while svc.stats()["admission"]["pending"] < 2 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        payload = json.dumps({"key": key, "source": 0,
                              "sink": -1}).encode()
        codes, retry_afters = [], []
        for _ in range(burst):
            request = urllib.request.Request(
                f"http://{host}:{port}/solve", method="POST",
                data=payload,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(request, timeout=30) as r:
                    codes.append(r.status)
            except urllib.error.HTTPError as err:
                codes.append(err.code)
                retry_afters.append(err.headers.get("Retry-After"))
        shed_503 = sum(1 for c in codes if c == 503)
        completed = [f.result(timeout=300) for f in in_budget]
        in_budget_ok = all(np.isfinite(r.x).all() for r in completed)
        print(f"burst of {burst} over max_pending=2: "
              f"{shed_503} shed with 503, in-budget ok={in_budget_ok}")
        if shed_503 == 0:
            failures.append(f"no request shed with 503 (codes={codes})")
        if any(ra is None for ra in retry_afters):
            failures.append("503 without a Retry-After header")
        if not in_budget_ok:
            failures.append("an in-budget request failed under burst")

        # -- breaker: two dead batches open it; a clean probe closes it --
        with use_faults("kill:chunk=1:attempt=*:stage=serve,"
                        "kill:chunk=2:attempt=*:stage=serve"):
            batch_failures = 0
            for _ in range(2):
                try:
                    svc.solve(key, b, eps=EPS, timeout=300)
                except InjectedFault:
                    batch_failures += 1
        opened = svc.breaker.state == "open"
        failed_fast = False
        try:
            svc.solve(key, b, eps=EPS, timeout=300)
        except ServiceOverloadedError:
            failed_fast = True
        time.sleep(0.6)  # cooldown: the next request is the probe
        probe = svc.solve(key, b, eps=EPS, timeout=300)
        reclosed = bool(svc.breaker.state == "closed"
                        and np.isfinite(probe.x).all())
        print(f"breaker: {batch_failures} batch failures -> "
              f"open={opened}, fail-fast={failed_fast}, "
              f"re-closed={reclosed}")
        if batch_failures != 2:
            failures.append(
                f"expected 2 injected batch failures, got {batch_failures}")
        if not opened:
            failures.append("breaker did not open after failures")
        if not failed_fast:
            failures.append("open breaker did not fail fast")
        if not reclosed:
            failures.append("breaker did not re-close after the probe")
        stats = svc.stats()
    return {"burst_codes": codes, "shed_503": shed_503,
            "in_budget_completed": in_budget_ok,
            "breaker_opened": opened, "breaker_failed_fast": failed_fast,
            "breaker_reclosed": reclosed, "service_stats": stats}


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: smaller workload; every gate "
                         "still enforced")
    ap.add_argument("--n", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (196 if args.smoke
                                                  else 1024)
    cpus = os.cpu_count() or 1
    os.environ["REPRO_WORKERS"] = str(WORKERS)
    os.environ["REPRO_TRANSPORT_ACK_S"] = "0.5"

    g, B = make_workload(n_target)
    print(f"workload: grid n={g.n} m={g.m} k={N_RHS} eps={EPS} "
          f"cpus={cpus} workers={WORKERS} "
          f"chunk_columns={CHUNK_COLUMNS}")

    failures: list[str] = []

    # Serial baseline: the reference solutions and ledger totals.
    opts0 = practical_options().with_(backend="serial",
                                      chunk_columns=CHUNK_COLUMNS)
    solver0 = LaplacianSolver(g, options=opts0, seed=SEED)
    solver0.solve_many(B, eps=EPS)  # warm the lazy CSR Laplacian
    X0, ledger0, _, t0 = ledgered_solve(solver0, B)
    print(f"baseline serial: {t0:.3f}s work={ledger0[0]:.3g} "
          f"depth={ledger0[1]:.3g}")

    wire_runs = run_wire_scenarios(g, B, X0, ledger0, failures)
    tcp_runs = run_tcp_mode(g, B, X0, ledger0, failures)
    admission = run_admission(g, failures,
                              burst=4 if args.smoke else 16)

    # -- gate (d): hygiene — everything reaped after teardown ---------------
    shutdown_distributed_pools()
    workers_left = live_distributed_workers()
    segments_left = live_segment_names()
    clean = workers_left == () and segments_left == ()
    print(f"teardown clean (no workers, no segments): {clean}")
    if workers_left:
        failures.append(f"unreaped worker pids {workers_left}")
    if segments_left:
        failures.append(f"leaked segments {segments_left}")

    ok = not failures
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(f"transport invariance (bit-identical under wire faults): {ok}")

    result = {
        "bench": "p10_transport",
        "workload": {"n": g.n, "m": g.m, "k": N_RHS, "eps": EPS,
                     "seed": SEED, "workers": WORKERS,
                     "chunk_columns": CHUNK_COLUMNS},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "smoke": bool(args.smoke),
        "baseline_seconds": t0,
        "ledger": {"work": ledger0[0], "depth": ledger0[1]},
        "wire_scenarios": wire_runs,
        "tcp_mode": tcp_runs,
        "admission": admission,
        "teardown_clean": clean,
        "all_gates_passed": ok,
        "failures": failures,
    }
    out_path = REPO_ROOT / "BENCH_transport.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
