"""E10 — Theorem 3.8: Richardson needs ⌈e^{2δ} log(1/ε)⌉ iterations.

Sweeps ε and checks (a) the iteration-count formula, (b) that the
measured error after the prescribed iterations is within target, and
(c) the per-iteration geometric contraction implied by δ.
"""

import math

import numpy as np
import pytest

from conftest import record, workload

from repro.core.richardson import (
    preconditioned_richardson,
    richardson_iterations,
)
from repro.graphs.laplacian import apply_laplacian, laplacian
from repro.linalg.ops import energy_norm, relative_lnorm_error
from repro.linalg.pinv import dense_laplacian_pinv, exact_solution


def _instance(delta: float):
    g = workload("grid", 300, seed=10)
    L = laplacian(g)
    P = dense_laplacian_pinv(L.toarray())
    scale = math.exp(delta)  # B = e^δ L⁺  =>  B ≈_δ L⁺ exactly
    b = np.random.default_rng(0).standard_normal(g.n)
    b -= b.mean()
    return g, L, (lambda v: scale * (P @ v)), b, exact_solution(g, b)


@pytest.mark.parametrize("eps", [1e-2, 1e-5, 1e-9])
def test_e10_iteration_budget_suffices(benchmark, eps):
    delta = 1.0
    g, L, B, b, xstar = _instance(delta)

    res = benchmark(lambda: preconditioned_richardson(
        lambda v: apply_laplacian(g, v), B, b, delta=delta, eps=eps))
    err = relative_lnorm_error(L, res.x, xstar)
    record(benchmark, eps=eps, iterations=res.iterations,
           formula=richardson_iterations(delta, eps),
           measured_error=float(err))
    assert res.iterations == richardson_iterations(delta, eps)
    assert err <= eps


def test_e10_contraction_rate(benchmark):
    """Per-iteration contraction ≈ (e^δ − e^{−δ})/(e^δ + e^{−δ})."""
    delta = 1.0
    g, L, B, b, xstar = _instance(delta)

    def run():
        return preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b, delta=delta,
            eps=1e-12,
            track_errors=lambda x: energy_norm(L, x - xstar))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    hist = np.array(res.error_history)
    hist = hist[hist > 1e-12]
    rate = float((hist[-1] / hist[0]) ** (1.0 / max(len(hist) - 1, 1)))
    bound = math.tanh(delta)  # worst case over the δ-ball
    record(benchmark, measured_rate=rate, theoretical_bound=bound)
    assert rate <= bound + 0.02
