"""Shared helpers for the experiment benchmarks (E1-E14).

Each ``bench_eXX_*.py`` module regenerates one claim from the paper
(see DESIGN.md §4).  Conventions:

* every test uses the ``benchmark`` fixture so that
  ``pytest benchmarks/ --benchmark-only`` runs exactly this suite;
* measured quantities that correspond to paper claims are written into
  ``benchmark.extra_info`` so the saved JSON doubles as the experiment
  record, and asserted against the *shape* the theorem predicts;
* absolute wall-clock is reported but never asserted (we run a
  simulated PRAM on a laptop, not the paper's machine model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph


def workload(name: str, n_target: int, seed: int = 0) -> MultiGraph:
    """Named benchmark workloads with ~n_target vertices."""
    if name == "grid":
        side = max(2, int(round(np.sqrt(n_target))))
        return G.grid2d(side, side)
    if name == "torus":
        side = max(3, int(round(np.sqrt(n_target))))
        return G.torus2d(side, side)
    if name == "expander":
        n = max(10, n_target - (n_target % 2))
        return G.random_regular(n, 4, seed=seed)
    if name == "er":
        n = max(10, n_target)
        p = min(1.0, 8.0 / n)
        return G.erdos_renyi(n, p, seed=seed)
    if name == "barbell":
        k = max(4, n_target // 2)
        return G.barbell(k, 3)
    if name == "weighted_grid":
        side = max(2, int(round(np.sqrt(n_target))))
        return G.with_random_weights(G.grid2d(side, side), 0.01, 100.0,
                                     seed=seed, log_uniform=True)
    raise ValueError(f"unknown workload {name!r}")


@pytest.fixture
def balanced_rhs():
    def make(graph: MultiGraph, seed: int = 1) -> np.ndarray:
        rng = np.random.default_rng(seed)
        b = rng.standard_normal(graph.n)
        return b - b.mean()

    return make


def record(benchmark, **info) -> None:
    """Stash claim-relevant measurements in the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
