"""E3 — Theorem 1.1 depth: O(log² n loglog n · log 1/ε).

The theorem's depth decomposes as

    depth(solve) = iterations(ε) × depth(W apply)
    depth(W apply) = O(d · log m · l),   d = O(log n), l = O(loglog n)

At laptop scales the *measured* ``d`` is dominated by the transient of
``log_{40/39}(n / min_vertices)`` (the 36.5× constant in front of
``log n`` means exponent-fitting over n ≤ 10⁴ is meaningless), so this
bench verifies the decomposition instead: per-apply ledger depth
divided by ``d · log₂ m · l`` must be flat across the size sweep, and
``d`` itself is bounded against the paper's explicit
``log_{40/39} n`` in E5.  A second test pins the ``log 1/ε`` factor.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro import LaplacianSolver, default_options, use_ledger

SIZES = [150, 300, 600, 1200, 2400]


def _apply_depth(n_target: int) -> dict:
    g = workload("grid", n_target, seed=3)
    solver = LaplacianSolver(g, options=default_options(), seed=0)
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0
    with use_ledger() as ledger:
        solver.preconditioner.apply(b)
    d = max(solver.chain.d, 1)
    l = max((lvl.jacobi.l for lvl in solver.chain.levels), default=1)
    logm = np.log2(max(solver.multigraph.m, 2))
    return {"n": g.n, "depth": ledger.depth, "d": d, "l": l,
            "logm": logm, "ratio": ledger.depth / (d * l * logm)}


def test_e03_depth_decomposition_flat(benchmark):
    rows = [_apply_depth(n) for n in SIZES[:-1]]

    def final():
        return _apply_depth(SIZES[-1])

    rows.append(benchmark.pedantic(final, rounds=1, iterations=1))
    ratios = np.array([r["ratio"] for r in rows])
    record(benchmark,
           sizes=[r["n"] for r in rows],
           apply_depth=[float(r["depth"]) for r in rows],
           levels=[r["d"] for r in rows],
           jacobi_terms=[r["l"] for r in rows],
           normalised_ratio=[float(x) for x in ratios])
    # depth / (d · l · log m) flat within a small band across a 16x
    # size sweep certifies depth = O(d · log m · loglog n); combined
    # with E5's d = O(log n) this is the theorem's shape.
    assert ratios.max() <= 2.0 * ratios.min()


def test_e03_depth_log_eps_dependence(benchmark):
    """Depth scales linearly in log(1/ε) (the Richardson factor)."""
    g = workload("grid", 500, seed=3)
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0
    solver = LaplacianSolver(g, options=default_options(), seed=0)

    def depth_for(eps: float) -> float:
        with use_ledger() as ledger:
            solver.solve(b, eps=eps)
        return ledger.depth

    depths = [depth_for(eps) for eps in (1e-2, 1e-4)]

    def final():
        return depth_for(1e-8)

    depths.append(benchmark.pedantic(final, rounds=1, iterations=1))
    logs = np.log([1e2, 1e4, 1e8])
    ratios = np.array(depths) / logs
    record(benchmark, depths=depths, depth_per_log_eps=ratios.tolist())
    assert ratios.max() <= 2.5 * ratios.min()
