"""E7 — Lemma 5.4: terminal walks are short under a 5-DD complement.

Claims: expected walk length O(1) (escape probability ≥ 4/5 per step),
max length O(log m) whp, total steps O(m).  Measured per workload with
a real 5-DD subset, timing one full TerminalWalks invocation.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.core.boundedness import naive_split
from repro.core.dd_subset import five_dd_subset
from repro.core.terminal_walks import terminal_walks


@pytest.mark.parametrize("name", ["grid", "expander", "er"])
def test_e07_walk_lengths(benchmark, name):
    g = naive_split(workload(name, 700, seed=7), 0.25)
    F = five_dd_subset(g, seed=0)
    C = np.setdiff1d(np.arange(g.n), F)

    def run():
        return terminal_walks(g, C, seed=1, return_stats=True)

    H, stats = benchmark(run)
    record(benchmark, workload=name, m=g.m,
           mean_walk_length=stats.mean_walk_length,
           max_walk_length=stats.max_walk_length,
           total_steps=stats.total_steps,
           steps_per_edge=stats.total_steps / g.m)
    assert stats.mean_walk_length < 2.0           # O(1) expected
    assert stats.max_walk_length <= 4 * np.log2(g.m) + 8  # O(log m) whp
    assert stats.total_steps <= 4 * g.m            # O(m) total


def test_e07_geometric_tail(benchmark):
    """Walk-length distribution has a geometric tail with ratio ≤ 1/5
    (each step escapes to C with probability ≥ 4/5)."""
    g = naive_split(workload("grid", 900, seed=7), 0.25)
    F = five_dd_subset(g, seed=2)
    C = np.setdiff1d(np.arange(g.n), F)
    from repro.sampling.walks import WalkEngine

    is_term = np.zeros(g.n, dtype=bool)
    is_term[C] = True
    engine = WalkEngine(g, is_term)
    starts = np.repeat(F, 50)  # many walkers per interior vertex

    res = benchmark(lambda: engine.run(starts, seed=3))
    lengths = res.length
    tail2 = float(np.mean(lengths >= 2))
    tail1 = float(np.mean(lengths >= 1))
    record(benchmark, walkers=starts.size,
           p_len_ge_1=tail1, p_len_ge_2=tail2,
           tail_ratio=tail2 / max(tail1, 1e-12))
    assert tail2 / max(tail1, 1e-12) <= 0.25  # ≤ 1/5 + slack
