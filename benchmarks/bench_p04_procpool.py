"""P4 — process-pool shared-memory execution backend.

Measures the PR-4 tentpole on an n≈2025 grid:

* **Backend invariance (always gated)** — end-to-end ``approx_schur``
  must produce **bit-identical** graphs for every
  ``REPRO_BACKEND ∈ {serial, thread, process}`` at
  ``REPRO_WORKERS ∈ {1, 2, 4}``, and ledger work/depth totals must
  match across the whole matrix.  This is the determinism contract of
  DESIGN.md §7: chunk layout and per-chunk RNG streams are functions
  of problem size only; backends and workers only schedule.
* **Walker-phase scaling** — ``approx_schur`` wall-clock per backend.
  The walker-stepping bookkeeping is Python-bound, so the thread
  backend is GIL-limited (~1.2× at 4 workers); the process backend
  ships the per-level CSR arrays through ``multiprocessing.
  shared_memory`` (chunk jobs pickle only slice bounds + seed keys)
  and can use all cores.
* **Shared-memory hygiene (always gated)** — after every run the
  parent's segment registry must be empty and ``/dev/shm`` must hold
  nothing with this process's payload prefix: create/attach/unlink is
  crash-safe and leaves no leaks.

Acceptance target (ISSUE 4): ≥ 1.5× ``approx_schur`` speedup with the
process backend at 4 workers vs the serial backend.  Process speedup
is physically bounded by the machine — the gate is enforced in the
full run only when the host has ≥ 4 CPUs; on smaller hosts (including
a 1-CPU container) the measured ratios are recorded with
``"gate": "skipped (...)"`` so CI on multi-core runners still enforces
it.  The invariance and hygiene gates always run.  Results land in
``BENCH_procpool.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p04_procpool.py           # full
    PYTHONPATH=src python benchmarks/bench_p04_procpool.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import default_options
from repro.core.schur import approx_schur
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import BACKENDS, live_segment_names

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 1.5           # 4-worker process-vs-serial target (≥ 4 CPUs)
WORKERS = (1, 2, 4)
SEED = 1234

#: Walker chunk grain for the benchmark workload: small enough that
#: even the CI-sized smoke rounds produce several chunks per dispatch
#: (so every backend — including the shared-memory shipping path —
#: genuinely fans out), large enough that per-chunk kernels dominate
#: dispatch overhead.  Part of the chunk policy ⇒ held fixed across the
#: whole matrix (it is part of the result).
CHUNK_ITEMS = 4096


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    return G.grid2d(side, side)


def set_execution(backend: str, workers: int) -> None:
    os.environ["REPRO_BACKEND"] = backend
    os.environ["REPRO_WORKERS"] = str(workers)


def timed(fn, repeats: int):
    best, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: gates invariance/hygiene, "
                         "reports timing without enforcing speedups")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (400 if args.smoke
                                                  else 2025)
    repeats = args.repeats if args.repeats is not None \
        else (1 if args.smoke else 3)
    cpus = os.cpu_count() or 1

    g = make_workload(n_target)
    C = np.arange(0, g.n, 3)
    eps = 0.5
    opts = default_options().with_(chunk_items=CHUNK_ITEMS)
    print(f"workload: grid n={g.n} m={g.m} eps={eps} "
          f"cpus={cpus} repeats={repeats} chunk_items={CHUNK_ITEMS}")

    # -- backend × worker matrix: timings + bit-identical outputs ------------
    times: dict[str, dict[str, float]] = {b: {} for b in BACKENDS}
    ledger_totals: dict[tuple[str, int], tuple[float, float]] = {}
    base = None
    identical = True
    for backend in BACKENDS:
        for w in WORKERS:
            set_execution(backend, w)
            t, out = timed(
                lambda: approx_schur(g, C, eps=eps, seed=SEED,
                                     options=opts), repeats)
            times[backend][str(w)] = t
            with use_ledger() as ledger:
                check = approx_schur(g, C, eps=eps, seed=SEED,
                                     options=opts)
            ledger_totals[(backend, w)] = (ledger.work, ledger.depth)
            if base is None:
                base = out
            elif out != base or check != base:
                identical = False
            print(f"approx_schur backend={backend} workers={w}: {t:.3f}s")
    print(f"backend-matrix invariance (bit-identical graphs): {identical}")
    if not identical:
        print("FAIL: approx_schur output depends on REPRO_BACKEND/"
              "REPRO_WORKERS", file=sys.stderr)
        return 1
    ledger_ok = len(set(ledger_totals.values())) == 1
    print(f"ledger work/depth invariance: {ledger_ok}")
    if not ledger_ok:
        print(f"FAIL: ledger totals vary across the matrix: "
              f"{ledger_totals}", file=sys.stderr)
        return 1

    speedup_proc = times["serial"]["1"] / times["process"]["4"]
    speedup_thread = times["serial"]["1"] / times["thread"]["4"]

    # -- shared-memory hygiene ------------------------------------------------
    leaked_registry = list(live_segment_names())
    prefix = f"repro-{os.getpid()}-"
    leaked_fs = []
    if os.path.isdir("/dev/shm"):
        leaked_fs = [name for name in os.listdir("/dev/shm")
                     if name.startswith(prefix)]
    hygiene_ok = not leaked_registry and not leaked_fs
    print(f"shared-memory hygiene (no leaked segments): {hygiene_ok}")
    if not hygiene_ok:
        print(f"FAIL: leaked segments registry={leaked_registry} "
              f"fs={leaked_fs}", file=sys.stderr)
        return 1

    # -- gates ----------------------------------------------------------------
    if args.smoke or cpus < 4:
        gate = f"skipped ({'smoke' if args.smoke else f'cpus={cpus} < 4'})"
        ok = True
    else:
        gate = f"enforced (>= {FULL_SPEEDUP}x process@4 vs serial@1)"
        ok = speedup_proc >= FULL_SPEEDUP
        if not ok:
            print(f"FAIL: process-backend speedup {speedup_proc:.2f}x < "
                  f"{FULL_SPEEDUP}x at 4 workers", file=sys.stderr)

    result = {
        "bench": "p04_procpool",
        "workload": {"n": g.n, "m": g.m, "eps": eps, "seed": SEED,
                     "chunk_items": CHUNK_ITEMS},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "approx_schur_seconds": times,
        "process_speedup_4v_serial": speedup_proc,
        "thread_speedup_4v_serial": speedup_thread,
        "backend_matrix_bit_identical": identical,
        "ledger_totals_invariant": ledger_ok,
        "shared_memory_clean": hygiene_ok,
        "speedup_gate": gate,
    }
    out_path = REPO_ROOT / "BENCH_procpool.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
