"""P9 — solver-as-a-service: resident chain cache + micro-batched solves.

Measures the PR-9 tentpole on an n≈2025 grid: a long-lived
:class:`repro.serve.SolverService` holding built chains resident in a
keyed LRU cache and fusing concurrent single-RHS requests into one
BLAS-3 ``solve_many`` block.

* **Batching equivalence (always gated)** — ``k = 16`` concurrent
  requests through the micro-batcher must land in **one** batch and
  scatter columns **bit-identical** to a direct ``solve_many`` on the
  same resident chain (the service's determinism contract,
  DESIGN.md §12).
* **Warm-cache hit rate (always gated)** — over a 3-graph keyset with
  an ample byte budget, steady-state requests must hit the resident
  chains: hit rate ≥ 0.9 (the misses are exactly the three cold
  builds).
* **Throughput (≥ 4 CPUs, full run only)** — one micro-batched window
  of ``k = 16`` requests must complete ≥ 2× faster than 16 sequential
  batch-of-one round trips.  On smaller hosts the measured ratio is
  recorded with ``"gate": "skipped (...)"`` so CI on multi-core
  runners still enforces it.
* **Latency vs offered load (recorded)** — per-request p50/p95/p99
  latency under open-loop arrival at a sweep of offered QPS, showing
  the window trade: batching amortises the blocked solve while adding
  at most one window of queueing delay.

Results land in ``BENCH_serve.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p09_serve.py           # full
    PYTHONPATH=src python benchmarks/bench_p09_serve.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.config import practical_options
from repro.graphs import generators as G
from repro.pram.executor import live_segment_names
from repro.serve import SolverService

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 2.0          # batched vs sequential at k=16 (≥ 4 CPUs)
HIT_RATE_FLOOR = 0.9
K_RHS = 16
SEED = 1234
EPS = 1e-6
#: Gathering window for the equivalence/throughput phases: long enough
#: that submission jitter cannot split the batch.
BATCH_WINDOW_MS = 150.0


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    return G.grid2d(side, side)


def percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run_equivalence(svc: SolverService, key: str,
                    B: np.ndarray) -> tuple[bool, bool]:
    """k concurrent submits: one batch, bit-identical to solve_many."""
    futures = [svc.submit(key, B[:, i], eps=EPS) for i in range(B.shape[1])]
    results = [f.result(timeout=300) for f in futures]
    one_batch = (len({r.batch_seq for r in results}) == 1
                 and all(r.batched_k == B.shape[1] for r in results))
    X = np.stack([r.x for r in results], axis=1)
    direct = svc.cache.get(key).solve_many(B, eps=EPS)
    return one_batch, bool(np.array_equal(X, direct))


def run_throughput(svc: SolverService, key: str, B: np.ndarray,
                   repeats: int) -> tuple[float, float]:
    """Best-of wall time: one batched window vs k sequential trips."""
    k = B.shape[1]

    def batched() -> float:
        t0 = time.perf_counter()
        futures = [svc.submit(key, B[:, i], eps=EPS) for i in range(k)]
        for f in futures:
            f.result(timeout=300)
        return time.perf_counter() - t0

    def sequential() -> float:
        t0 = time.perf_counter()
        for i in range(k):
            svc.solve(key, B[:, i], eps=EPS, timeout=300)
        return time.perf_counter() - t0

    t_batch = min(batched() for _ in range(repeats))
    t_seq = min(sequential() for _ in range(repeats))
    return t_batch, t_seq


def run_hit_rate(svc: SolverService, keys: list[str],
                 rhs: dict[str, np.ndarray], rounds: int) -> dict:
    """Round-robin steady-state load over the warm keyset."""
    before = svc.cache.stats()
    for r in range(rounds):
        futures = [svc.submit(key, rhs[key], eps=EPS) for key in keys]
        for f in futures:
            f.result(timeout=300)
    after = svc.cache.stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    total = hits + misses
    return {"requests": rounds * len(keys), "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "builds": after["builds"], "evictions": after["evictions"]}


def run_latency_sweep(svc: SolverService, key: str, n: int,
                      qps_points: list[float], per_point: int) -> list:
    """Open-loop arrival: fixed inter-arrival gaps at each offered QPS.

    Requests fire on schedule (late completions do not slow the
    arrival clock — open loop); per-request latency is submit→result,
    stamped by a done-callback on each future.
    """
    rng = np.random.default_rng(SEED + 1)
    sweep = []
    for qps in qps_points:
        B = rng.standard_normal((n, per_point))
        B -= B.mean(axis=0)
        latencies = _timed_point(svc, key, B, gap=1.0 / qps)
        sweep.append({
            "offered_qps": qps,
            "requests": per_point,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p95_ms": percentile(latencies, 95) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
            "max_ms": max(latencies) * 1e3,
        })
        print(f"latency @ {qps:g} qps: "
              f"p50={sweep[-1]['p50_ms']:.1f}ms "
              f"p95={sweep[-1]['p95_ms']:.1f}ms "
              f"p99={sweep[-1]['p99_ms']:.1f}ms")
    return sweep


def _timed_point(svc: SolverService, key: str, B: np.ndarray,
                 gap: float) -> list[float]:
    """One open-loop point: per-request completion latency via callbacks."""
    per_point = B.shape[1]
    ends = [0.0] * per_point
    starts = [0.0] * per_point
    done = threading.Semaphore(0)

    def on_done(i: int):
        def cb(_fut) -> None:
            ends[i] = time.perf_counter()
            done.release()
        return cb

    t_begin = time.perf_counter()
    for i in range(per_point):
        target = t_begin + i * gap
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        starts[i] = time.perf_counter()
        fut = svc.submit(key, B[:, i], eps=EPS)
        fut.add_done_callback(on_done(i))
    for _ in range(per_point):
        if not done.acquire(timeout=300):
            raise TimeoutError("latency point stalled")
    return [ends[i] - starts[i] for i in range(per_point)]


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: gates equivalence/hit-rate, "
                         "reports throughput without enforcing it")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (400 if args.smoke
                                                  else 2025)
    repeats = args.repeats if args.repeats is not None \
        else (1 if args.smoke else 3)
    cpus = os.cpu_count() or 1

    g = make_workload(n_target)
    rng = np.random.default_rng(SEED)
    B = rng.standard_normal((g.n, K_RHS))
    B -= B.mean(axis=0)
    opts = practical_options().with_(chunk_columns=4)
    print(f"workload: grid n={g.n} m={g.m} k={K_RHS} eps={EPS} "
          f"cpus={cpus} repeats={repeats}")

    with SolverService(options=opts,
                       window_ms=BATCH_WINDOW_MS) as svc:
        t0 = time.perf_counter()
        key = svc.register(g, seed=SEED)
        build_s = time.perf_counter() - t0
        chain_mb = svc.cache.get(key).chain.nbytes / 1e6
        print(f"registered key={key[:12]}… build={build_s:.3f}s "
              f"chain={chain_mb:.2f} MB")

        # -- gate 1: batching equivalence (always) ---------------------------
        one_batch, identical = run_equivalence(svc, key, B)
        print(f"micro-batched k={K_RHS} in one batch: {one_batch}")
        print(f"batched bit-identical to direct solve_many: {identical}")
        if not (one_batch and identical):
            print("FAIL: micro-batching is not equivalent to a direct "
                  "blocked solve", file=sys.stderr)
            return 1

        # -- gate 2: warm-cache hit rate over a keyset (always) --------------
        side = max(4, int(round(math.sqrt(g.n))))
        others = [G.torus2d(side, side), G.path(g.n)]
        keyset = [key] + [svc.register(og, seed=SEED) for og in others]
        rhs = {}
        for k_, og in zip(keyset, [g] + others):
            b = rng.standard_normal(og.n)
            rhs[k_] = b - b.mean()
        hit_stats = run_hit_rate(svc, keyset, rhs,
                                 rounds=3 if args.smoke else 10)
        print(f"warm keyset hit rate: {hit_stats['hit_rate']:.3f} "
              f"({hit_stats['hits']}/{hit_stats['hits'] + hit_stats['misses']})")
        if hit_stats["hit_rate"] < HIT_RATE_FLOOR:
            print(f"FAIL: warm-cache hit rate "
                  f"{hit_stats['hit_rate']:.3f} < {HIT_RATE_FLOOR}",
                  file=sys.stderr)
            return 1

        # -- throughput: batched window vs sequential round trips ------------
        t_batch, t_seq = run_throughput(svc, key, B, repeats)
        speedup = t_seq / t_batch if t_batch > 0 else float("inf")
        print(f"k={K_RHS}: batched window {t_batch:.3f}s, sequential "
              f"{t_seq:.3f}s → {speedup:.2f}x")
        if args.smoke or cpus < 4:
            gate = f"skipped ({'smoke' if args.smoke else f'cpus={cpus} < 4'})"
            ok = True
        else:
            gate = f"enforced (>= {FULL_SPEEDUP}x batched vs sequential " \
                   f"at k={K_RHS})"
            ok = speedup >= FULL_SPEEDUP
            if not ok:
                print(f"FAIL: batched speedup {speedup:.2f}x < "
                      f"{FULL_SPEEDUP}x at k={K_RHS}", file=sys.stderr)

        # -- latency vs offered QPS (recorded, not gated) --------------------
        qps_points = [25.0, 100.0] if args.smoke \
            else [25.0, 100.0, 400.0]
        per_point = 20 if args.smoke else 100
        sweep = run_latency_sweep(svc, key, g.n, qps_points, per_point)
        service_stats = svc.stats()

    # -- hygiene: nothing resident after shutdown ----------------------------
    clean = live_segment_names() == ()
    print(f"shared-memory clean after shutdown: {clean}")
    if not clean:
        print(f"FAIL: leaked segments {live_segment_names()}",
              file=sys.stderr)
        return 1

    result = {
        "bench": "p09_serve",
        "workload": {"n": g.n, "m": g.m, "k": K_RHS, "eps": EPS,
                     "seed": SEED, "window_ms": BATCH_WINDOW_MS},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "chain_build_seconds": build_s,
        "chain_payload_mb": chain_mb,
        "batched_one_window": one_batch,
        "batched_bit_identical": identical,
        "hit_rate": hit_stats,
        "batched_seconds": t_batch,
        "sequential_seconds": t_seq,
        "batched_speedup": speedup,
        "latency_vs_qps": sweep,
        "service_stats": service_stats,
        "shared_memory_clean": clean,
        "speedup_gate": gate,
    }
    out_path = REPO_ROOT / "BENCH_serve.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
