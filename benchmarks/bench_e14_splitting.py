"""E14 — Lemmas 3.2 vs 3.3: multigraph sizes O(m/α) vs O(m + nKα⁻¹).

The paper's Theorem 1.2 claims leverage-score splitting wins on dense
graphs.  We measure multi-edge counts of both schemes on a dense and a
sparse workload and locate the claimed crossover, plus overestimate
quality (τ̂ ≥ τ) against the dense oracle.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.config import practical_options
from repro.core.boundedness import leverage_scores, naive_split
from repro.core.lev_est import leverage_overestimates, leverage_split
from repro.graphs import generators as G


def test_e14_dense_graph_crossover(benchmark):
    g = G.complete(50)  # m = 1225 >> n
    alpha = 1.0 / 16.0
    K = 3

    lev = benchmark(lambda: leverage_split(
        g, alpha, K=K, seed=0, options=practical_options()))
    naive = naive_split(g, alpha)
    record(benchmark, n=g.n, m=g.m,
           naive_multiedges=naive.m, leverage_multiedges=lev.m,
           savings=naive.m / lev.m)
    assert lev.m < naive.m  # Theorem 1.2 wins on dense inputs


def test_e14_sparse_graph_no_benefit(benchmark):
    # On sparse graphs m ≈ n: most edges have high leverage, so both
    # schemes cost about the same — the paper only claims gains for
    # dense graphs.
    g = workload("grid", 400, seed=14)
    alpha = 1.0 / 16.0

    lev = benchmark.pedantic(
        lambda: leverage_split(g, alpha, K=3, seed=1,
                               options=practical_options()),
        rounds=1, iterations=1)
    naive = naive_split(g, alpha)
    record(benchmark, naive_multiedges=naive.m,
           leverage_multiedges=lev.m)
    assert lev.m <= naive.m * 1.01  # never (meaningfully) worse


def test_e14_overestimate_quality(benchmark):
    g = G.complete(36)
    tau = leverage_scores(g)

    tau_hat = benchmark(lambda: leverage_overestimates(
        g, K=3, seed=2, options=practical_options()))
    frac_over = float(np.mean(tau_hat >= tau * 0.999))
    record(benchmark, overestimate_fraction=frac_over,
           sum_tau=float(tau.sum()), sum_tau_hat=float(tau_hat.sum()),
           nK=g.n * 3)
    assert frac_over > 0.97
    assert tau_hat.sum() <= 10.0 * g.n * 3  # O(nK) sum bound
