"""P3 — ExecutionContext: real parallelism through the solver stack.

Measures the PR-3 tentpole on an n≈2025 grid:

* **Walker-phase scaling** — end-to-end ``approx_schur`` wall-clock at
  ``REPRO_WORKERS ∈ {1, 2, 4}``.  The walker batches step in
  deterministic disjoint chunks on the thread pool (numpy releases the
  GIL inside each chunk's kernels), so the three runs must produce
  **bit-identical** graphs — asserted — while wall-clock drops with
  available cores.
* **Incremental restricted CSR** — ``approx_schur`` with the
  incrementally maintained walk adjacency (delete eliminated-F rows,
  insert emitted edges) vs ``incremental=False`` per-round rebuilds.
  Outputs are bit-identical (asserted); the delta is pure rebuild cost.
* **Column-blocked solve scaling** — ``solve_many`` with k = 64
  right-hand sides against one factorization, column chunks spread
  over the pool, workers 1 vs 4 (solutions asserted identical).

Acceptance target (ISSUE 3): ≥ 1.5× ``approx_schur`` speedup at 4
workers vs 1.  Thread-pool speedup is physically bounded by the
machine — the gate is enforced in the full run only when the host has
≥ 4 CPUs; on smaller hosts (including this container's 1-CPU cgroup)
the measured ratios are recorded with ``"gate": "skipped (cpus < 4)"``
so CI on multi-core runners still enforces it.  The determinism and
incremental-equality gates always run.  Results land in
``BENCH_parallel.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p03_parallel.py           # full
    PYTHONPATH=src python benchmarks/bench_p03_parallel.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import practical_options
from repro.core.schur import approx_schur
from repro.core.solver import LaplacianSolver
from repro.graphs import generators as G
from repro.linalg.ops import project_out_ones

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_SPEEDUP = 1.5           # 4-worker approx_schur target (≥ 4 CPUs)
WORKERS = (1, 2, 4)
SEED = 1234


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    return G.grid2d(side, side)


def set_workers(w: int) -> None:
    os.environ["REPRO_WORKERS"] = str(w)


def timed(fn, repeats: int):
    best, out = None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: gates determinism/equality, "
                         "reports timing without enforcing speedups")
    ap.add_argument("--n", type=int, default=None)
    ap.add_argument("--repeats", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (400 if args.smoke
                                                  else 2025)
    repeats = args.repeats if args.repeats is not None \
        else (1 if args.smoke else 3)
    cpus = os.cpu_count() or 1

    g = make_workload(n_target)
    C = np.arange(0, g.n, 3)
    eps = 0.5
    print(f"workload: grid n={g.n} m={g.m} eps={eps} "
          f"cpus={cpus} repeats={repeats}")

    # -- walker-phase scaling -------------------------------------------------
    schur_times: dict[str, float] = {}
    outputs = {}
    for w in WORKERS:
        set_workers(w)
        t, out = timed(lambda: approx_schur(g, C, eps=eps, seed=SEED),
                       repeats)
        schur_times[str(w)] = t
        outputs[w] = out
        print(f"approx_schur workers={w}: {t:.3f}s")
    identical = all(outputs[w] == outputs[WORKERS[0]] for w in WORKERS[1:])
    print(f"worker-invariance (bit-identical graphs): {identical}")
    if not identical:
        print("FAIL: approx_schur output depends on REPRO_WORKERS",
              file=sys.stderr)
        return 1
    speedup4 = schur_times["1"] / schur_times["4"]

    # -- incremental restricted CSR ------------------------------------------
    set_workers(1)
    t_inc, out_inc = timed(
        lambda: approx_schur(g, C, eps=eps, seed=SEED, incremental=True),
        repeats)
    t_scratch, out_scratch = timed(
        lambda: approx_schur(g, C, eps=eps, seed=SEED, incremental=False),
        repeats)
    inc_equal = out_inc == out_scratch
    print(f"incremental CSR: {t_inc:.3f}s vs from-scratch "
          f"{t_scratch:.3f}s (equal: {inc_equal})")
    if not inc_equal:
        print("FAIL: incremental CSR changed the sampled Schur graph",
              file=sys.stderr)
        return 1

    # Isolate the per-round CSR cost itself (the end-to-end delta is
    # diluted by the shared walk/5DD work).  Mid-elimination working
    # graphs carry mostly *explicit* emitted edges (stored ≈ logical
    # count), so the representative regime is the materialised split:
    # restricted-view extraction touches O(deg F) slots while a
    # from-scratch rebuild counting-sorts every stored edge.
    from repro.core.boundedness import naive_split
    from repro.core.dd_subset import five_dd_subset
    from repro.core.schur import schur_alpha_inverse
    from repro.sampling.inc_csr import IncrementalWalkCSR

    split = naive_split(g, 1.0 / schur_alpha_inverse(g.n, eps),
                        materialize=True)
    F = five_dd_subset(split, active=np.setdiff1d(np.arange(g.n), C),
                       seed=SEED)
    mask = np.zeros(g.n, dtype=bool)
    mask[F] = True
    inc_store = IncrementalWalkCSR(split)
    micro_reps = 5 if args.smoke else 20
    t_view, _ = timed(lambda: inc_store.restricted_view(F), micro_reps)
    t_rebuild, _ = timed(lambda: split.adjacency_restricted(mask),
                         micro_reps)
    print(f"round CSR micro: extract {t_view * 1e3:.2f}ms vs rebuild "
          f"{t_rebuild * 1e3:.2f}ms "
          f"({t_rebuild / t_view:.2f}x, |F|={F.size}, m={split.m})")

    # -- column-blocked solve scaling ----------------------------------------
    set_workers(1)
    solver = LaplacianSolver(g, options=practical_options(), seed=SEED)
    k = 16 if args.smoke else 64
    B = project_out_ones(
        np.random.default_rng(SEED).standard_normal((g.n, k)))
    solve_times: dict[str, float] = {}
    sols = {}
    for w in (1, 4):
        set_workers(w)
        t, x = timed(lambda: solver.solve_many(B, eps=1e-6), repeats)
        solve_times[str(w)] = t
        sols[w] = x
        print(f"solve_many k={k} workers={w}: {t:.3f}s")
    solve_equal = bool(np.array_equal(sols[1], sols[4]))
    print(f"solve_many worker-invariance: {solve_equal}")
    if not solve_equal:
        print("FAIL: solve_many depends on REPRO_WORKERS", file=sys.stderr)
        return 1

    # -- gates ----------------------------------------------------------------
    if args.smoke or cpus < 4:
        gate = f"skipped ({'smoke' if args.smoke else f'cpus={cpus} < 4'})"
        ok = True
    else:
        gate = f"enforced (>= {FULL_SPEEDUP}x at 4 workers)"
        ok = speedup4 >= FULL_SPEEDUP
        if not ok:
            print(f"FAIL: approx_schur speedup {speedup4:.2f}x < "
                  f"{FULL_SPEEDUP}x at 4 workers", file=sys.stderr)

    result = {
        "bench": "p03_parallel",
        "workload": {"n": g.n, "m": g.m, "eps": eps, "k_rhs": k,
                     "seed": SEED},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "repeats": repeats,
        "smoke": bool(args.smoke),
        "approx_schur_seconds": schur_times,
        "approx_schur_speedup_4v1": speedup4,
        "approx_schur_speedup_2v1": schur_times["1"] / schur_times["2"],
        "worker_invariance_bit_identical": identical,
        "incremental_csr": {"incremental_seconds": t_inc,
                            "scratch_seconds": t_scratch,
                            "rebuild_saving_x": t_scratch / t_inc,
                            "outputs_equal": inc_equal,
                            "round_extract_ms": t_view * 1e3,
                            "round_rebuild_ms": t_rebuild * 1e3,
                            "round_csr_speedup_x": t_rebuild / t_view,
                            "round_F_size": int(F.size)},
        "solve_many_seconds": solve_times,
        "solve_many_speedup_4v1": solve_times["1"] / solve_times["4"],
        "solve_many_invariant": solve_equal,
        "speedup_gate": gate,
    }
    out_path = REPO_ROOT / "BENCH_parallel.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
