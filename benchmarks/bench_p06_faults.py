"""P6 — fault-tolerant execution: recovery is invisible in the results.

Measures the PR-6 tentpole on an n≈1024 grid.  The determinism
contract (DESIGN.md §6–§8) makes recovery cheap: chunk layout and
per-chunk RNG streams are functions of problem size only, so a lost
chunk re-dispatched with its original ``(lo, hi, seed_key)`` is
bit-identical to what the lost attempt would have produced.  This
benchmark *gates* that claim end-to-end:

* **Fault invariance (always gated)** — a full build+solve with an
  injected fault must produce **bit-identical** solutions and ledger
  work/depth totals vs the fault-free baseline, for every
  ``REPRO_BACKEND ∈ {serial, thread, process}`` at
  ``REPRO_WORKERS ∈ {1, 2, 4}`` and each fault scenario:

  - ``kill`` — a worker process dies hard mid-chunk (in-process
    backends: the chunk raises); recovered by bounded re-dispatch;
  - ``hang`` — a worker stalls; recovered by the stall timeout killing
    and rebuilding the pool, then re-dispatching (process backend);
  - ``degrade`` — retries exhausted on the process backend; recovered
    by falling down the backend ladder (process → thread), which
    replays the identical chunks.

* **Recovery actually happened (always gated)** — each faulted run's
  :class:`~repro.pram.faults.FaultLog` must show the expected actions
  (``retry``; ``timeout`` for hang; ``degrade`` for the ladder), so a
  silently-not-firing fault cannot fake a pass.
* **Shared-memory hygiene (always gated)** — after every scenario the
  segment registry must be empty and ``/dev/shm`` must hold nothing
  with this process's payload prefix, even though workers were killed
  mid-dispatch.

Results land in ``BENCH_faults.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_p06_faults.py           # full
    PYTHONPATH=src python benchmarks/bench_p06_faults.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.config import practical_options
from repro.core.solver import LaplacianSolver
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import BACKENDS, live_segment_names
from repro.pram.faults import use_fault_log, use_faults

REPO_ROOT = Path(__file__).resolve().parent.parent

SEED = 1234
WORKERS = (1, 2, 4)
CHUNK_ITEMS = 512      # several walker chunks even at smoke sizes
N_RHS = 5

#: scenario name -> (fault plan, backends it applies to, required
#: FaultLog actions).  ``kill``/``hang`` strike attempt 0 and recover
#: via plain re-dispatch; ``degrade`` pins an every-attempt kill to the
#: process backend so retries exhaust there and the backend ladder
#: (process -> thread) must finish the chunks.
SCENARIOS = {
    "kill": ("kill:chunk=1", BACKENDS, ("retry",)),
    "hang": ("hang:chunk=0:seconds=30", ("process",),
             ("timeout", "retry")),
    "degrade": ("kill:chunk=1:attempt=*:backend=process", ("process",),
                ("exhausted", "degrade")),
}

#: The hang directive stalls chunk 0's first attempt of *every*
#: dispatch (a build has dozens), each costing one stall timeout — so
#: the hang scenario runs with a tight timeout and at one worker count
#: only.  The timeout path itself is identical at every worker count.
HANG_TIMEOUT = 1.0


def make_workload(n_target: int):
    side = max(4, int(round(math.sqrt(n_target))))
    g = G.grid2d(side, side)
    rng = np.random.default_rng(7)
    B = rng.standard_normal((g.n, N_RHS))
    B -= B.mean(axis=0)
    return g, B


def set_execution(backend: str, workers: int) -> None:
    os.environ["REPRO_BACKEND"] = backend
    os.environ["REPRO_WORKERS"] = str(workers)


def run_once(g, B, opts, plan):
    """One full build+solve under ``plan``; returns everything gated."""
    t0 = time.perf_counter()
    with use_faults(plan), use_fault_log() as flog:
        with use_ledger() as ledger:
            solver = LaplacianSolver(g, options=opts, seed=SEED)
            X = solver.solve_many(B, eps=1e-6)
    elapsed = time.perf_counter() - t0
    actions = dict(flog.summary())
    for event_log in (solver.build_fault_log,):
        for action, count in event_log.summary().items():
            actions[action] = actions.get(action, 0) + count
    return X, (ledger.work, ledger.depth), actions, elapsed


def shm_leaks() -> list[str]:
    leaked = list(live_segment_names())
    prefix = f"repro-{os.getpid()}-"
    if os.path.isdir("/dev/shm"):
        leaked += [name for name in os.listdir("/dev/shm")
                   if name.startswith(prefix)]
    return leaked


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--smoke", action="store_true",
                    help="CI-sized run: smaller workload and worker "
                         "set; every gate still enforced")
    ap.add_argument("--n", type=int, default=None)
    args = ap.parse_args()

    n_target = args.n if args.n is not None else (400 if args.smoke
                                                  else 1024)
    workers = (2,) if args.smoke else WORKERS
    cpus = os.cpu_count() or 1

    g, B = make_workload(n_target)
    # retries=2 covers every scenario's recovery; the stall timeout
    # arms the hang scenario (and is harmless elsewhere — it only
    # fires when *no* chunk completes in time).  degrade is on, as the
    # CLI would have it; the fault-free baseline never consults it.
    opts = practical_options().with_(chunk_items=CHUNK_ITEMS, retries=2,
                                     chunk_timeout=5.0, degrade=True)
    print(f"workload: grid n={g.n} m={g.m} k={N_RHS} cpus={cpus} "
          f"chunk_items={CHUNK_ITEMS} workers={workers}")

    failures: list[str] = []
    runs: dict[str, dict] = {}

    set_execution("serial", 1)
    X0, ledger0, _, t0 = run_once(g, B, opts, None)
    print(f"baseline serial@1: {t0:.3f}s work={ledger0[0]:.3g} "
          f"depth={ledger0[1]:.3g}")

    for backend in BACKENDS:
        for w in workers:
            set_execution(backend, w)
            Xc, ledgerc, _, tc = run_once(g, B, opts, None)
            if not np.array_equal(Xc, X0) or ledgerc != ledger0:
                failures.append(f"clean run differs: {backend}@{w}")
            for name, (plan, applies, wanted) in SCENARIOS.items():
                if backend not in applies:
                    continue
                if name == "hang" and w != workers[0]:
                    continue
                run_opts = opts if name != "hang" \
                    else opts.with_(chunk_timeout=HANG_TIMEOUT)
                Xf, ledgerf, actions, tf = run_once(g, B, run_opts, plan)
                key = f"{name}:{backend}@{w}"
                bit_identical = bool(np.array_equal(Xf, X0))
                ledger_ok = ledgerf == ledger0
                fired = all(actions.get(a, 0) >= 1 for a in wanted)
                leaks = shm_leaks()
                runs[key] = {
                    "seconds": tf, "clean_seconds": tc,
                    "bit_identical": bit_identical,
                    "ledger_invariant": ledger_ok,
                    "fault_log": actions, "shm_leaks": leaks,
                }
                status = "ok" if (bit_identical and ledger_ok and fired
                                  and not leaks) else "FAIL"
                print(f"{key}: {tf:.3f}s (clean {tc:.3f}s) "
                      f"log={actions} -> {status}")
                if not bit_identical:
                    failures.append(f"{key}: solution differs")
                if not ledger_ok:
                    failures.append(
                        f"{key}: ledger {ledgerf} != {ledger0}")
                if not fired:
                    failures.append(
                        f"{key}: expected {wanted}, log={actions}")
                if leaks:
                    failures.append(f"{key}: leaked shm {leaks}")

    ok = not failures
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(f"fault invariance (bit-identical under injected faults): {ok}")

    result = {
        "bench": "p06_faults",
        "workload": {"n": g.n, "m": g.m, "k": N_RHS, "seed": SEED,
                     "chunk_items": CHUNK_ITEMS},
        "machine": {"cpus": cpus, "platform": platform.platform(),
                    "python": platform.python_version()},
        "smoke": bool(args.smoke),
        "scenarios": {name: spec[0] for name, spec in SCENARIOS.items()},
        "runs": runs,
        "all_gates_passed": ok,
        "failures": failures,
    }
    out_path = REPO_ROOT / "BENCH_faults.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
