"""E4 — Theorem 3.9-(1): every G^(k) has at most m multi-edges.

``TerminalWalks`` emits ≤ 1 edge per input edge, so the chain's edge
counts must be non-increasing; we check the full profile across
workloads (and time the chain construction).
"""

import pytest

from conftest import record, workload

from repro.config import default_options
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split


@pytest.mark.parametrize("name", ["grid", "expander", "er", "barbell",
                                  "weighted_grid"])
def test_e04_edge_counts_monotone(benchmark, name):
    g = workload(name, 500, seed=4)
    opts = default_options()
    H = naive_split(g, opts.alpha(g.n))

    chain = benchmark(lambda: block_cholesky(H, opts, seed=0))
    counts = chain.edge_counts
    record(benchmark, workload=name, m_multigraph=H.m,
           edge_profile=counts, levels=chain.d)
    assert all(c <= H.m for c in counts)
    assert all(b <= a for a, b in zip(counts, counts[1:]))
