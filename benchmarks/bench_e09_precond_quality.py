"""E9 — Theorem 3.10 / Lemma 3.6: the operator quality W ≈₁ L⁺.

Materialises W on small graphs, measures the exact Loewner
approximation factor against L⁺, and checks the factorization-level
claim (Theorem 3.9-(5): chain ≈_{0.5} L).  Timing covers one operator
application (the quantity Theorem 3.10 bounds by O(m log n loglog n)).
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.config import SolverOptions
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import (
    approximation_factor,
    operator_approximation_factor,
)


@pytest.mark.parametrize("name", ["grid", "expander", "weighted_grid"])
def test_e09_operator_quality(benchmark, name):
    g = workload(name, 90, seed=9)
    H = naive_split(g, 0.05)
    chain = block_cholesky(H, SolverOptions(min_vertices=20), seed=0)
    W = ApplyCholeskyOperator(chain)
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0

    benchmark(lambda: W.apply(b))
    factor_W = operator_approximation_factor(W.apply, laplacian(g))
    factor_chain = approximation_factor(chain.dense_factorization(),
                                        laplacian(g).toarray())
    record(benchmark, workload=name, n=g.n, levels=chain.d,
           W_approx_factor=float(factor_W),
           chain_approx_factor=float(factor_chain))
    assert factor_chain <= 0.5   # Theorem 3.9-(5)
    assert factor_W <= 1.0       # Theorem 3.10


def test_e09_relative_condition_number(benchmark):
    """κ(W L) ≤ e² on 1⊥ — what makes Richardson O(log 1/ε)."""
    import scipy.linalg

    g = workload("grid", 80, seed=9)
    H = naive_split(g, 0.05)
    chain = block_cholesky(H, SolverOptions(min_vertices=20), seed=1)
    W = ApplyCholeskyOperator(chain)
    L = laplacian(g).toarray()

    def condition():
        n = g.n
        M = np.zeros((n, n))
        for j in range(n):
            e = np.full(n, -1.0 / n)
            e[j] += 1.0
            M[:, j] = W.apply(L @ e)
        vals = np.sort(np.abs(scipy.linalg.eigvals(M).real))
        nonzero = vals[vals > 1e-8]
        return float(nonzero.max() / nonzero.min())

    kappa = benchmark.pedantic(condition, rounds=1, iterations=1)
    record(benchmark, relative_condition_number=kappa)
    assert kappa <= np.exp(2.0) + 0.5
