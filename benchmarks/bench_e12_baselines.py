"""E12 — the intro's positioning: our parallel solver vs [KS16] / CG /
direct.

The paper's claims to reproduce in *shape*:

* vs KS16 — same sampling paradigm, comparable solve quality, but our
  elimination happens in O(log n) parallel rounds instead of n
  sequential vertex eliminations (measured: chain depth vs n).
* vs CG — bounded iteration counts independent of conditioning
  (measured on a skew-weighted grid where CG struggles).
* vs direct — near-linear factor size instead of dense fill-in.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro import LaplacianSolver, default_options
from repro.baselines import DirectSolver, KS16Solver, cg_solve
from repro.graphs.laplacian import laplacian
from repro.linalg.ops import relative_lnorm_error
from repro.linalg.pinv import exact_solution


def _rhs(g, seed=0):
    b = np.random.default_rng(seed).standard_normal(g.n)
    return b - b.mean()


def test_e12_ours_vs_cg_iterations(benchmark):
    # Skew weights spread the spectrum: CG iteration count blows up,
    # the preconditioned solver's stays at the Theorem 3.8 budget.
    g = workload("weighted_grid", 600, seed=12)
    b = _rhs(g)
    solver = LaplacianSolver(g, options=default_options(), seed=0)

    rep = benchmark(lambda: solver.solve_report(b, eps=1e-6,
                                                method="pcg"))
    cg = cg_solve(g, b, eps=1e-6)
    record(benchmark, ours_iterations=rep.iterations,
           cg_iterations=cg.iterations,
           speedup_iterations=cg.iterations / max(rep.iterations, 1))
    assert rep.iterations < cg.iterations


def test_e12_parallel_rounds_vs_ks16_sequential(benchmark):
    # KS16 eliminates n vertices one-by-one (critical path Θ(n));
    # BlockCholesky eliminates in d = O(log n) rounds.
    g = workload("grid", 900, seed=12)
    solver = benchmark.pedantic(
        lambda: LaplacianSolver(g, options=default_options(), seed=0),
        rounds=1, iterations=1)
    d = solver.chain.d
    record(benchmark, n=g.n, our_rounds=d, ks16_rounds=g.n,
           round_ratio=g.n / d)
    assert d < g.n / 10

def test_e12_solution_quality_parity_with_ks16(benchmark):
    g = workload("grid", 400, seed=12)
    b = _rhs(g)
    xstar = exact_solution(g, b)
    L = laplacian(g)
    ours = LaplacianSolver(g, options=default_options(), seed=0)
    ks = KS16Solver(g, seed=0, split_factor=0.3)

    x_ours = benchmark(lambda: ours.solve(b, eps=1e-8))
    x_ks = ks.solve(b, eps=1e-8)
    err_ours = relative_lnorm_error(L, x_ours, xstar)
    err_ks = relative_lnorm_error(L, x_ks, xstar)
    record(benchmark, our_error=float(err_ours),
           ks16_error=float(err_ks))
    assert err_ours <= 1e-6
    assert err_ks <= 1e-4  # both paradigms solve accurately


def test_e12_memory_vs_direct(benchmark):
    # Chain storage is O(m log n)-ish; dense factorization is n².
    g = workload("er", 800, seed=12)
    solver = benchmark.pedantic(
        lambda: LaplacianSolver(g, options=default_options(), seed=0),
        rounds=1, iterations=1)
    stored = solver.chain.total_stored_edges()
    dense_entries = g.n * g.n
    record(benchmark, stored_multiedges=stored,
           dense_factor_entries=dense_entries,
           ratio=dense_entries / stored)
    assert stored < dense_entries


def test_e12_accuracy_all_solvers_agree(benchmark):
    g = workload("grid", 200, seed=12)
    b = _rhs(g)
    xstar = exact_solution(g, b)
    direct = DirectSolver(g)

    x_direct = benchmark(lambda: direct.solve(b))
    x_ours = LaplacianSolver(g, options=default_options(),
                             seed=1).solve(b, eps=1e-10)
    record(benchmark,
           direct_error=float(np.linalg.norm(x_direct - xstar)),
           ours_vs_direct=float(np.linalg.norm(x_ours - x_direct)))
    assert np.allclose(x_direct, xstar, atol=1e-8)
    assert np.linalg.norm(x_ours - x_direct) < 1e-4
