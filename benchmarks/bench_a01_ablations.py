"""A1 — ablations over the design choices DESIGN.md calls out.

Not paper claims per se, but the knobs the paper fixes by fiat:

* Jacobi ε (Algorithm 2 uses 1/(2d)) — operator quality vs apply cost;
* the 5-DD threshold (1/5) — walk length vs elimination rate tradeoff;
* α-scale — multigraph size vs chain approximation quality;
* outer loop — Richardson (paper) vs PCG vs Chebyshev on the same W.
"""

import numpy as np
import pytest

from conftest import record, workload

from repro.config import SolverOptions
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.dd_subset import five_dd_subset
from repro.core.terminal_walks import terminal_walks
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import operator_approximation_factor


def test_a01_jacobi_eps_tradeoff(benchmark):
    """Smaller Jacobi ε: better W, more terms per apply."""
    g = workload("grid", 90, seed=21)
    H = naive_split(g, 0.05)
    quality = {}
    terms = {}
    for eps in (0.5, 0.125, 0.02):
        chain = block_cholesky(
            H, SolverOptions(min_vertices=20, jacobi_eps=eps), seed=0)
        W = ApplyCholeskyOperator(chain)
        quality[eps] = operator_approximation_factor(W.apply,
                                                     laplacian(g))
        terms[eps] = chain.levels[0].jacobi.l if chain.levels else 0

    chain = block_cholesky(
        H, SolverOptions(min_vertices=20, jacobi_eps=0.02), seed=0)
    W = ApplyCholeskyOperator(chain)
    b = np.zeros(g.n)
    b[0], b[-1] = 1, -1
    benchmark(lambda: W.apply(b))
    record(benchmark,
           quality_by_eps={str(k): float(v) for k, v in quality.items()},
           terms_by_eps={str(k): v for k, v in terms.items()})
    # monotone: more terms, not worse quality
    assert terms[0.02] > terms[0.5]
    assert quality[0.02] <= quality[0.5] + 0.15


def test_a01_dd_threshold_tradeoff(benchmark):
    """Looser threshold (larger fraction of internal degree allowed):
    bigger F per round but longer walks."""
    g = naive_split(workload("grid", 700, seed=21), 0.25)
    results = {}
    for threshold in (0.1, 0.2, 0.4):
        opts = SolverOptions(dd_threshold=threshold)
        F = five_dd_subset(g, seed=1, options=opts)
        C = np.setdiff1d(np.arange(g.n), F)
        _, stats = terminal_walks(g, C, seed=2, return_stats=True)
        results[threshold] = (F.size, stats.mean_walk_length)

    benchmark(lambda: five_dd_subset(
        g, seed=1, options=SolverOptions(dd_threshold=0.2)))
    record(benchmark, sizes={str(k): v[0] for k, v in results.items()},
           walk_lengths={str(k): v[1] for k, v in results.items()})
    # Looser threshold => weakly larger subsets and longer walks.
    assert results[0.4][0] >= results[0.1][0]
    assert results[0.4][1] >= results[0.1][1] - 0.05


def test_a01_alpha_scale_tradeoff(benchmark):
    """α-scale sweep: multigraph size grows, operator quality improves."""
    g = workload("grid", 80, seed=21)
    rows = {}
    for scale in (0.02, 0.1, 0.4):
        opts = SolverOptions(alpha_scale=scale, min_vertices=20)
        H = naive_split(g, opts.alpha(g.n))
        chain = block_cholesky(H, opts, seed=3)
        W = ApplyCholeskyOperator(chain)
        rows[scale] = (H.m,
                       operator_approximation_factor(W.apply,
                                                     laplacian(g)))

    benchmark.pedantic(
        lambda: block_cholesky(
            naive_split(g, SolverOptions(alpha_scale=0.4).alpha(g.n)),
            SolverOptions(alpha_scale=0.4, min_vertices=20), seed=3),
        rounds=1, iterations=1)
    record(benchmark,
           multiedges={str(k): v[0] for k, v in rows.items()},
           quality={str(k): float(v[1]) for k, v in rows.items()})
    assert rows[0.4][0] > rows[0.02][0]          # more edges ...
    assert rows[0.4][1] <= rows[0.02][1] + 1e-9  # ... not worse quality


def test_a01_outer_loop_comparison(benchmark, balanced_rhs):
    """Richardson vs PCG vs Chebyshev around the same preconditioner."""
    from repro import LaplacianSolver, default_options
    from repro.linalg.chebyshev import chebyshev_iteration
    from repro.linalg.ops import relative_lnorm_error
    from repro.linalg.pinv import exact_solution

    g = workload("grid", 400, seed=21)
    b = balanced_rhs(g)
    solver = LaplacianSolver(g, options=default_options(), seed=0)
    xstar = exact_solution(g, b)
    L = laplacian(g)

    rich = solver.solve_report(b, eps=1e-8, method="richardson")
    pcg = solver.solve_report(b, eps=1e-8, method="pcg")

    def cheb():
        return chebyshev_iteration(
            solver.apply_L, solver.preconditioner.apply, b,
            lam_min=np.exp(-1.0), lam_max=np.exp(1.0), iterations=40)

    x_cheb = benchmark(cheb)
    errs = {
        "richardson": relative_lnorm_error(L, rich.x, xstar),
        "pcg": relative_lnorm_error(L, pcg.x, xstar),
        "chebyshev": relative_lnorm_error(L, x_cheb, xstar),
    }
    record(benchmark,
           iters={"richardson": rich.iterations, "pcg": pcg.iterations,
                  "chebyshev": 40},
           errors={k: float(v) for k, v in errs.items()})
    assert all(v <= 1e-4 for v in errs.values())
    assert pcg.iterations <= rich.iterations
